package circuit

import (
	"fmt"

	"repro/internal/diag"
	"repro/internal/linalg"
	"repro/internal/linalg/sparse"
)

// This file implements batched (structure-of-arrays) circuit evaluation:
// K parameter corners of the same topology evaluated in one call over
// contiguous arrays. The layout is lane-major — lane k's state is the
// contiguous block X[k·N : (k+1)·N], its residual F[k·N : (k+1)·N], and its
// Jacobian values JV[k·NNZ : (k+1)·NNZ] on the ONE sparse.Pattern shared by
// every lane — so a lane view is a plain subslice: per-lane linear solves
// need no gather, per-lane CSC views share the pattern pointer (and with it
// the KLU-style symbolic factorization), and fallback devices evaluate
// through the ordinary EvalContext with the lane block as its F.
//
// Bit-equality contract: for each lane, EvalFJBatch accumulates into every
// residual entry and Jacobian position in exactly the order the scalar
// evalInto does (devices in declaration order, then the Gmin diagonal, then
// rail-cap source terms), and the batched device kernels replicate the
// scalar models' floating-point expressions operation for operation. A
// lane of a batch therefore bit-equals a scalar Workspace.EvalFJ of the
// same corner; the property test in batch_test.go pins this.

// BatchLayout is the read-only geometry shared by a batch: lane count, node
// count, and the Jacobian pattern with slot resolution for device kernels.
type BatchLayout struct {
	K, N int
	pat  *sparse.Pattern
}

// Lanes returns the number of parameter corners in the batch.
func (l *BatchLayout) Lanes() int { return l.K }

// Nodes returns the per-lane ODE dimension.
func (l *BatchLayout) Nodes() int { return l.N }

// NNZ returns the per-lane Jacobian value count (pattern nonzeros).
func (l *BatchLayout) NNZ() int { return l.pat.NNZ() }

// Slot resolves the Jacobian value index of position (row, col) within one
// lane's value block, or −1 when either node is not free (the stamp is
// dropped, exactly like EvalContext.AddJac). Panics if both nodes are free
// but the position is absent from the pattern — the pattern is built from a
// probe evaluation of these same devices, so absence is a kernel bug.
func (l *BatchLayout) Slot(row, col NodeID) int {
	if !row.IsFree() || !col.IsFree() {
		return -1
	}
	s := l.pat.IndexOf(int(row), int(col))
	if s < 0 {
		panic(fmt.Sprintf("circuit: batch kernel stamps (%d,%d) outside the probed pattern", row, col))
	}
	return s
}

// FreeIndex returns the per-lane state index of a node, or −1 for rails.
func (l *BatchLayout) FreeIndex(n NodeID) int {
	if n.IsFree() {
		return int(n)
	}
	return -1
}

// BatchEvalContext carries one batched evaluation to device kernels. All
// slices are lane-major (see file comment); JV is nil when WantJacobian is
// false. Kernels must touch only the lanes listed in Active.
type BatchEvalContext struct {
	T float64
	// TL optionally holds per-lane evaluation times (length K); when non-nil
	// it overrides T for lane k. The batched transient integrator needs this:
	// lanes advance with per-lane step sizes, so at a common step index they
	// sit at different physical times.
	TL           []float64
	X            []float64 // K·N, read-only for kernels
	F            []float64 // K·N, accumulate KCL out-currents
	JV           []float64 // K·NNZ, accumulate Jacobian values by slot
	WantJacobian bool
	GminScale    float64
	SourceScale  float64
	// Active lists the lane indices to evaluate; converged or failed lanes
	// are excluded by the caller and their blocks must not be written.
	Active []int
	N, NNZ int

	ckts []*Circuit // per-lane circuits, for rail voltages
}

// LaneT returns lane k's evaluation time: TL[k] when per-lane times are set,
// the shared T otherwise.
func (bc *BatchEvalContext) LaneT(k int) float64 {
	if bc.TL != nil {
		return bc.TL[k]
	}
	return bc.T
}

// V returns the voltage of any node in lane k at the lane's time —
// lane state for free nodes, the lane circuit's rail waveform otherwise.
func (bc *BatchEvalContext) V(k int, n NodeID) float64 {
	if n.IsFree() {
		return bc.X[k*bc.N+int(n)]
	}
	return bc.ckts[k].RailVoltage(n, bc.LaneT(k))
}

// BatchKernel evaluates one device position across all active lanes.
type BatchKernel interface {
	EvalLanes(bc *BatchEvalContext)
}

// BatchKerneler is implemented by devices that can build a batched kernel.
// MakeBatchKernel receives the congruent device instances occupying the
// same netlist position in every lane (peers[0] is the receiver) and the
// batch geometry; it returns a kernel holding the per-lane parameters in
// structure-of-arrays form. Returning an error rejects the batch (the
// instances are topologically incongruent); devices that simply cannot be
// batched should not implement the interface — they evaluate through the
// scalar fallback instead.
type BatchKerneler interface {
	Device
	MakeBatchKernel(peers []Device, lay *BatchLayout) (BatchKernel, error)
}

// fallbackKernel evaluates a non-batchable device by running each lane's
// own scalar Eval with the lane block as the context's F and a CSC view of
// the lane's JV block as the sparse Jacobian sink. Accumulation order per
// lane is identical to the scalar path by construction.
type fallbackKernel struct {
	peers []Device
}

func (fk *fallbackKernel) EvalLanes(bc *BatchEvalContext) {
	var ctx EvalContext
	var view sparse.CSC
	for _, k := range bc.Active {
		ctx = EvalContext{
			ckt:          bc.ckts[k],
			T:            bc.LaneT(k),
			X:            bc.X[k*bc.N : (k+1)*bc.N],
			F:            bc.F[k*bc.N : (k+1)*bc.N],
			WantJacobian: bc.WantJacobian,
			GminScale:    bc.GminScale,
			SourceScale:  bc.SourceScale,
		}
		if bc.WantJacobian {
			view.Val = bc.JV[k*bc.NNZ : (k+1)*bc.NNZ]
			ctx.SJ = &view
		}
		fk.peers[k].Eval(&ctx)
	}
}

// Batch is the immutable plan for evaluating K congruent systems together:
// the shared pattern, the per-device kernels, per-lane capacitance values
// on the pattern, and the per-lane rail-cap lists. Like System, a Batch is
// safe for concurrent use; all mutable scratch lives in BatchWorkspace.
type Batch struct {
	K, N    int
	Systems []*System
	lay     BatchLayout
	kernels []BatchKernel
	// Fallbacks counts kernels running through the scalar per-lane path —
	// an observability hook for "why is this batch not faster".
	Fallbacks int
	diagSlots []int       // pattern slot of (i,i), for the Gmin loop
	cVals     [][]float64 // per-lane C on the shared pattern
	ckts      []*Circuit
}

// NewBatch validates that the systems are congruent — same node count,
// same device list shape, identical Jacobian pattern — and builds the
// batched evaluation plan. Lane 0's pattern becomes the batch's shared
// pattern object, so every per-lane CSC view carries the same pattern
// pointer (sparse.LU symbolic factorizations are reused across lanes).
func NewBatch(systems []*System) (*Batch, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("circuit: empty batch")
	}
	s0 := systems[0]
	pat := s0.SparsePattern()
	for k, s := range systems {
		if s.N != s0.N {
			return nil, fmt.Errorf("circuit: batch lane %d has %d nodes, lane 0 has %d", k, s.N, s0.N)
		}
		if len(s.Ckt.devices) != len(s0.Ckt.devices) {
			return nil, fmt.Errorf("circuit: batch lane %d has %d devices, lane 0 has %d", k, len(s.Ckt.devices), len(s0.Ckt.devices))
		}
		if len(s.railCaps) != len(s0.railCaps) {
			return nil, fmt.Errorf("circuit: batch lane %d has %d rail caps, lane 0 has %d", k, len(s.railCaps), len(s0.railCaps))
		}
		for i, rc := range s.railCaps {
			if rc.node != s0.railCaps[i].node || rc.rail != s0.railCaps[i].rail {
				return nil, fmt.Errorf("circuit: batch lane %d rail cap %d attaches to different nodes", k, i)
			}
		}
		if k > 0 && !samePattern(pat, s.SparsePattern()) {
			return nil, fmt.Errorf("circuit: batch lane %d has a different Jacobian pattern", k)
		}
	}
	b := &Batch{
		K:       len(systems),
		N:       s0.N,
		Systems: systems,
		lay:     BatchLayout{K: len(systems), N: s0.N, pat: pat},
		ckts:    make([]*Circuit, len(systems)),
	}
	for k, s := range systems {
		b.ckts[k] = s.Ckt
	}
	// Per-device kernels, in declaration order.
	peers := make([]Device, b.K)
	for di := range s0.Ckt.devices {
		for k, s := range systems {
			peers[k] = s.Ckt.devices[di]
		}
		kn, err := makeKernel(peers, &b.lay)
		if err != nil {
			return nil, fmt.Errorf("circuit: batch device %d (%s): %w", di, s0.Ckt.devices[di].Label(), err)
		}
		if _, fb := kn.(*fallbackKernel); fb {
			b.Fallbacks++
		}
		b.kernels = append(b.kernels, kn)
	}
	b.diagSlots = make([]int, b.N)
	for i := 0; i < b.N; i++ {
		b.diagSlots[i] = pat.IndexOf(i, i) // structurally present by construction
	}
	// Gather each lane's C onto the shared pattern (structure validated
	// congruent above via the pattern check; values differ per corner).
	b.cVals = make([][]float64, b.K)
	for k, s := range systems {
		cv := make([]float64, pat.NNZ())
		for j := 0; j < b.N; j++ {
			for p := pat.ColPtr[j]; p < pat.ColPtr[j+1]; p++ {
				cv[p] = s.C.At(pat.Rows[p], j)
			}
		}
		b.cVals[k] = cv
	}
	return b, nil
}

// makeKernel builds the kernel for one device position: the device's own
// batched kernel when every peer implements BatchKerneler, the scalar
// fallback otherwise.
func makeKernel(peers []Device, lay *BatchLayout) (BatchKernel, error) {
	bk, ok := peers[0].(BatchKerneler)
	if !ok {
		return &fallbackKernel{peers: append([]Device(nil), peers...)}, nil
	}
	for _, p := range peers[1:] {
		if _, ok := p.(BatchKerneler); !ok {
			return nil, fmt.Errorf("lane device type mismatch: %T vs %T", peers[0], p)
		}
	}
	return bk.MakeBatchKernel(peers, lay)
}

func samePattern(a, b *sparse.Pattern) bool {
	if a == b {
		return true
	}
	if a.N != b.N || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.ColPtr {
		if a.ColPtr[i] != b.ColPtr[i] {
			return false
		}
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			return false
		}
	}
	return true
}

// Pattern returns the shared per-lane Jacobian pattern.
func (b *Batch) Pattern() *sparse.Pattern { return b.lay.pat }

// CVals returns lane k's capacitance values on the shared pattern
// (read-only; aligned with Pattern()).
func (b *Batch) CVals(k int) []float64 { return b.cVals[k] }

// BatchWorkspace is the mutable scratch for batched evaluation: the F/JV
// result arrays, the active-lane set, and the reusable batch context. Like
// Workspace it is NOT safe for concurrent use — one per goroutine.
type BatchWorkspace struct {
	b *Batch
	// F and JV hold the last evaluation's results, lane-major.
	F  []float64
	JV []float64
	// active is the current lane subset (defaults to all lanes).
	active []int
	bc     BatchEvalContext
	m      *diag.Metrics
}

// NewWorkspace returns a fresh, independent batched evaluation workspace.
func (b *Batch) NewWorkspace() *BatchWorkspace {
	w := &BatchWorkspace{
		b:  b,
		F:  make([]float64, b.K*b.N),
		JV: make([]float64, b.K*b.lay.pat.NNZ()),
	}
	w.active = make([]int, b.K)
	for k := range w.active {
		w.active[k] = k
	}
	w.bc = BatchEvalContext{N: b.N, NNZ: b.lay.pat.NNZ(), ckts: b.ckts}
	return w
}

// Batch returns the shared immutable plan this workspace evaluates.
func (w *BatchWorkspace) Batch() *Batch { return w.b }

// SetMetrics attaches a diagnostics collector (nil disables).
func (w *BatchWorkspace) SetMetrics(m *diag.Metrics) { w.m = m }

// SetActive restricts evaluation to the given lane subset (aliased, not
// copied). Inactive lanes' F/JV blocks are left untouched.
func (w *BatchWorkspace) SetActive(lanes []int) { w.active = lanes }

// Active returns the current active-lane set.
func (w *BatchWorkspace) Active() []int { return w.active }

// LaneX returns lane k's block of a lane-major state vector.
func (w *BatchWorkspace) LaneX(x []float64, k int) []float64 {
	return x[k*w.b.N : (k+1)*w.b.N]
}

// LaneF returns lane k's residual block from the last evaluation.
func (w *BatchWorkspace) LaneF(k int) []float64 {
	return w.F[k*w.b.N : (k+1)*w.b.N]
}

// LaneJ returns lane k's Jacobian from the last EvalFJBatch as a CSC view
// on the shared pattern. The view aliases w.JV; it is valid until the next
// evaluation.
func (w *BatchWorkspace) LaneJ(k int) *sparse.CSC {
	nnz := w.b.lay.pat.NNZ()
	return &sparse.CSC{P: w.b.lay.pat, Val: w.JV[k*nnz : (k+1)*nnz]}
}

// LaneJDense gathers lane k's Jacobian into the dense dst (N×N).
func (w *BatchWorkspace) LaneJDense(dst *linalg.Mat, k int) *linalg.Mat {
	p := w.b.lay.pat
	nnz := p.NNZ()
	dst.Zero()
	base := k * nnz
	for j := 0; j < p.N; j++ {
		for s := p.ColPtr[j]; s < p.ColPtr[j+1]; s++ {
			dst.Set(p.Rows[s], j, w.JV[base+s])
		}
	}
	return dst
}

// EvalFJBatch evaluates f and the Jacobian for every active lane at (x, t):
// x is lane-major K·N, results land in w.F and w.JV. Per lane this is
// bit-identical to Workspace.EvalFJ of the same corner.
func (w *BatchWorkspace) EvalFJBatch(x []float64, t float64) {
	w.evalBatch(x, t, true, 1, 1)
}

// EvalFBatch evaluates the residual only (w.JV untouched).
func (w *BatchWorkspace) EvalFBatch(x []float64, t float64) {
	w.evalBatch(x, t, false, 1, 1)
}

// EvalScaledBatch is EvalFJBatch under gmin/source continuation scaling;
// wantJ=false skips the Jacobian.
func (w *BatchWorkspace) EvalScaledBatch(x []float64, t float64, wantJ bool, gminScale, srcScale float64) {
	w.evalBatch(x, t, wantJ, gminScale, srcScale)
}

// EvalBatchAt is the per-lane-time evaluation: lane k is evaluated at tl[k]
// (tl has length K). Everything else matches EvalFJBatch/EvalFBatch.
func (w *BatchWorkspace) EvalBatchAt(x []float64, tl []float64, wantJ bool) {
	if len(tl) != w.b.K {
		panic("circuit: EvalBatchAt lane-time length mismatch")
	}
	w.bc.TL = tl
	w.evalBatch(x, 0, wantJ, 1, 1)
	w.bc.TL = nil
}

func (w *BatchWorkspace) evalBatch(x []float64, t float64, wantJ bool, gminScale, srcScale float64) {
	b := w.b
	if len(x) != b.K*b.N {
		panic("circuit: EvalFJBatch state length mismatch")
	}
	w.m.Inc(diag.BatchEvals)
	w.m.Add(diag.BatchLaneEvals, int64(len(w.active)))
	w.m.Add(diag.CircuitEvals, int64(len(w.active)))
	if wantJ {
		w.m.Add(diag.CircuitJacEvals, int64(len(w.active)))
	}
	nnz := b.lay.pat.NNZ()
	for _, k := range w.active {
		blk := w.F[k*b.N : (k+1)*b.N]
		for i := range blk {
			blk[i] = 0
		}
		if wantJ {
			jblk := w.JV[k*nnz : (k+1)*nnz]
			for i := range jblk {
				jblk[i] = 0
			}
		}
	}
	bc := &w.bc
	bc.T = t
	bc.X = x
	bc.F = w.F
	bc.WantJacobian = wantJ
	if wantJ {
		bc.JV = w.JV
	} else {
		bc.JV = nil
	}
	bc.GminScale = gminScale
	bc.SourceScale = srcScale
	bc.Active = w.active
	// Devices in declaration order (kernels loop lanes innermost), then the
	// Gmin diagonal, then rail-cap source terms — the scalar evalInto order,
	// per lane.
	for _, kn := range b.kernels {
		kn.EvalLanes(bc)
	}
	for _, k := range w.active {
		base := k * b.N
		jbase := k * nnz
		for i := 0; i < b.N; i++ {
			g := b.ckts[k].Gmin * gminScale
			w.F[base+i] += g * x[base+i]
			if wantJ {
				w.JV[jbase+b.diagSlots[i]] += g
			}
		}
	}
	for _, k := range w.active {
		base := k * b.N
		tk := bc.LaneT(k)
		for _, rc := range b.Systems[k].railCaps {
			w.F[base+rc.node] -= rc.cap * b.ckts[k].railDVDt(rc.rail, tk)
		}
	}
	bc.X, bc.F, bc.JV = nil, nil, nil
}
