package circuit_test

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/linalg"
)

// railCapSystem couples a 1 µF capacitor from the given rail into a resistive
// node, so f(n1) = −C·dVrail/dt exposes railDVDt directly.
func railCapSystem(t *testing.T, build func(c *circuit.Circuit) circuit.NodeID) *circuit.System {
	t.Helper()
	c := circuit.New()
	c.ParasiticCap = 0
	rail := build(c)
	n1 := c.Node("n1")
	c.Add(
		&device.Capacitor{Name: "cc", A: rail, B: n1, C: 1e-6},
		&device.Resistor{Name: "r", A: n1, B: circuit.Ground, R: 1e3},
	)
	sys, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// railDVDtOf recovers dVrail/dt from the assembled residual.
func railDVDtOf(sys *circuit.System, tt float64) float64 {
	f := sys.EvalF(linalg.Vec{0}, tt, nil)
	return -f[0] / 1e-6
}

func TestRailTimeScaleSlowRail(t *testing.T) {
	// A Hz-scale modulated supply: V = 2.5 + 1e-3·sin(2π·0.5·t). With the
	// 2 s period declared, the central-difference step scales to the
	// waveform instead of the legacy fixed 1 ns.
	v := func(tt float64) float64 { return 2.5 + 1e-3*math.Sin(2*math.Pi*0.5*tt) }
	sys := railCapSystem(t, func(c *circuit.Circuit) circuit.NodeID {
		id := c.AddRail("mod", v)
		c.SetRailTimeScale(id, 2.0)
		return id
	})
	const tt = 0.3
	want := 1e-3 * math.Pi * math.Cos(2*math.Pi*0.5*tt)
	got := railDVDtOf(sys, tt)
	if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-4 {
		t.Fatalf("dV/dt = %g, want %g (rel err %g)", got, want, rel)
	}
}

func TestRailTimeScaleFastRail(t *testing.T) {
	// A GHz rail breaks the legacy absolute step completely: h = 1 ns spans
	// exactly one period, so the central difference aliases to ≈ 0. Declaring
	// the 1 ns timescale shrinks h to 1 ps and recovers the derivative.
	v := func(tt float64) float64 { return math.Sin(2 * math.Pi * 1e9 * tt) }
	const tt = 0.2e-9
	want := 2 * math.Pi * 1e9 * math.Cos(2*math.Pi*1e9*tt)

	legacy := railCapSystem(t, func(c *circuit.Circuit) circuit.NodeID {
		return c.AddRail("rf", v)
	})
	if got := railDVDtOf(legacy, tt); math.Abs(got) > 0.01*math.Abs(want) {
		t.Fatalf("legacy absolute step should alias the GHz rail derivative to ~0, got %g (true %g)", got, want)
	}

	scaled := railCapSystem(t, func(c *circuit.Circuit) circuit.NodeID {
		id := c.AddRail("rf", v)
		c.SetRailTimeScale(id, 1e-9)
		return id
	})
	if got := railDVDtOf(scaled, tt); math.Abs(got-want)/math.Abs(want) > 1e-3 {
		t.Fatalf("scaled step dV/dt = %g, want %g", got, want)
	}
}

func TestAddRailDerivAnalytic(t *testing.T) {
	// An analytic derivative bypasses differencing entirely and is exact.
	sys := railCapSystem(t, func(c *circuit.Circuit) circuit.NodeID {
		return c.AddRailDeriv("ramp",
			func(tt float64) float64 { return 100 * tt },
			func(tt float64) float64 { return 100 },
		)
	})
	if got := railDVDtOf(sys, 0.5); got != 100 {
		t.Fatalf("analytic dV/dt = %g, want exactly 100", got)
	}
}

func TestSetRailTimeScalePanics(t *testing.T) {
	c := circuit.New()
	id := c.AddRail("r", func(float64) float64 { return 0 })
	n := c.Node("n")
	for name, fn := range map[string]func(){
		"free node": func() { c.SetRailTimeScale(n, 1) },
		"ground":    func() { c.SetRailTimeScale(circuit.Ground, 1) },
		"zero tau":  func() { c.SetRailTimeScale(id, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
