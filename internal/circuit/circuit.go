// Package circuit provides the circuit-equation substrate for the PHLOGON
// design tools. Circuits are described as a set of nodes and devices and are
// assembled into the ODE form
//
//	C·dx/dt = -f(x, t)
//
// where x are the free node voltages, C is the (constant, symmetric positive
// definite) capacitance matrix, and f collects all resistive and source
// currents flowing out of each node (Kirchhoff's current law). This is the
// paper's DAE (eq. 1) specialized to circuits in which every free node
// carries capacitance — true by construction here, because a configurable
// parasitic capacitance is added to any node that would otherwise be purely
// algebraic. Index-0 form keeps the PSS, monodromy, and PPV machinery exact.
//
// Supply rails and level-based logic inputs (EN, CLK) are "fixed" nodes with
// prescribed, possibly time-varying, potentials; they contribute no unknowns.
package circuit

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// NodeID identifies a circuit node. IDs ≥ 0 index free (unknown-voltage)
// nodes; IDs < 0 index fixed nodes (rails). The ground rail is predefined.
type NodeID int

// Ground is the reference rail at 0 V, present in every circuit.
const Ground NodeID = -1

// IsFree reports whether the node is a free unknown.
func (n NodeID) IsFree() bool { return n >= 0 }

// Rail describes a fixed node: a prescribed potential V(t) and its time
// derivative (needed when capacitors attach to time-varying rails).
type Rail struct {
	Name string
	V    func(t float64) float64
	DVDt func(t float64) float64 // optional; nil means numerically differentiated
}

// Device is a circuit element. StampC is called once at assembly time to
// contribute constant capacitances; Eval is called at every (x, t) to
// contribute KCL currents and, when ctx.WantJacobian, their derivatives.
type Device interface {
	Label() string
	StampC(c *CapStamper)
	Eval(ctx *EvalContext)
}

// Circuit is a netlist of free nodes, rails, and devices.
type Circuit struct {
	nodeNames []string
	nodeIndex map[string]int
	rails     []Rail
	railIndex map[string]int
	devices   []Device

	// ParasiticCap is added from every free node to ground so that the
	// capacitance matrix is nonsingular (default 1 pF; see package doc).
	ParasiticCap float64
	// Gmin is a small conductance added from every free node to ground for
	// Newton robustness (default 1e-12 S).
	Gmin float64
}

// New returns an empty circuit with default parasitics.
func New() *Circuit {
	return &Circuit{
		nodeIndex:    map[string]int{},
		railIndex:    map[string]int{},
		ParasiticCap: 1e-12,
		Gmin:         1e-12,
	}
}

// Node returns the NodeID for name, creating a free node on first use.
func (c *Circuit) Node(name string) NodeID {
	if name == "0" || name == "gnd" || name == "GND" {
		return Ground
	}
	if i, ok := c.railIndex[name]; ok {
		return NodeID(-2 - i)
	}
	if i, ok := c.nodeIndex[name]; ok {
		return NodeID(i)
	}
	i := len(c.nodeNames)
	c.nodeNames = append(c.nodeNames, name)
	c.nodeIndex[name] = i
	return NodeID(i)
}

// AddRail registers a fixed node with a prescribed potential and returns its
// NodeID. Registering must happen before the name is used as a free node.
func (c *Circuit) AddRail(name string, v func(t float64) float64) NodeID {
	if _, ok := c.nodeIndex[name]; ok {
		panic(fmt.Sprintf("circuit: node %q already exists as a free node", name))
	}
	if i, ok := c.railIndex[name]; ok {
		c.rails[i].V = v
		return NodeID(-2 - i)
	}
	i := len(c.rails)
	c.rails = append(c.rails, Rail{Name: name, V: v})
	c.railIndex[name] = i
	return NodeID(-2 - i)
}

// AddDCRail registers a fixed node at a constant potential.
func (c *Circuit) AddDCRail(name string, v float64) NodeID {
	id := c.AddRail(name, func(float64) float64 { return v })
	c.rails[-2-int(id)].DVDt = func(float64) float64 { return 0 }
	return id
}

// Add appends devices to the circuit.
func (c *Circuit) Add(devs ...Device) {
	c.devices = append(c.devices, devs...)
}

// NumNodes returns the number of free nodes (the ODE dimension).
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NodeName returns the name of free node i.
func (c *Circuit) NodeName(i int) string { return c.nodeNames[i] }

// NodeIndex returns the index of the named free node, or -1.
func (c *Circuit) NodeIndex(name string) int {
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	return -1
}

// Devices returns the device list (shared slice; treat as read-only).
func (c *Circuit) Devices() []Device { return c.devices }

// RailVoltage evaluates the potential of a non-free node at time t.
func (c *Circuit) RailVoltage(n NodeID, t float64) float64 {
	if n == Ground {
		return 0
	}
	return c.rails[-2-int(n)].V(t)
}

// railDVDt evaluates dV/dt of a non-free node at time t.
func (c *Circuit) railDVDt(n NodeID, t float64) float64 {
	if n == Ground {
		return 0
	}
	r := c.rails[-2-int(n)]
	if r.DVDt != nil {
		return r.DVDt(t)
	}
	const h = 1e-9
	return (r.V(t+h) - r.V(t-h)) / (2 * h)
}

// CapStamper accumulates the constant capacitance matrix.
type CapStamper struct {
	ckt *Circuit
	C   *linalg.Mat
	// railCaps[i] lists capacitances from free node i to time-varying rails;
	// they contribute source currents C·dVrail/dt.
	railCaps []railCap
}

type railCap struct {
	node int
	rail NodeID
	cap  float64
}

// AddCap stamps a two-terminal capacitance between nodes a and b.
func (s *CapStamper) AddCap(a, b NodeID, cap float64) {
	if cap < 0 {
		panic("circuit: negative capacitance")
	}
	if a.IsFree() {
		s.C.Addf(int(a), int(a), cap)
	}
	if b.IsFree() {
		s.C.Addf(int(b), int(b), cap)
	}
	if a.IsFree() && b.IsFree() {
		s.C.Addf(int(a), int(b), -cap)
		s.C.Addf(int(b), int(a), -cap)
	}
	// A capacitor to a moving rail injects C·dVrail/dt into the free node.
	if a.IsFree() && !b.IsFree() && b != Ground {
		s.railCaps = append(s.railCaps, railCap{int(a), b, cap})
	}
	if b.IsFree() && !a.IsFree() && a != Ground {
		s.railCaps = append(s.railCaps, railCap{int(b), a, cap})
	}
}

// EvalContext carries the operating point to Device.Eval and accumulates
// KCL currents F (out of each node) and their Jacobian J = dF/dx.
type EvalContext struct {
	ckt          *Circuit
	T            float64
	X            linalg.Vec
	F            linalg.Vec
	J            *linalg.Mat
	WantJacobian bool
	// GminScale scales the circuit Gmin (used by gmin continuation).
	GminScale float64
	// SourceScale scales all independent sources (source stepping); devices
	// honoring it multiply their source values by it.
	SourceScale float64
}

// V returns the voltage of any node at the context's (x, t).
func (e *EvalContext) V(n NodeID) float64 {
	if n.IsFree() {
		return e.X[int(n)]
	}
	return e.ckt.RailVoltage(n, e.T)
}

// AddCurrent adds a current i flowing out of node n into the device.
func (e *EvalContext) AddCurrent(n NodeID, i float64) {
	if n.IsFree() {
		e.F[int(n)] += i
	}
}

// AddJac adds dI(out of n)/dV(m) to the Jacobian.
func (e *EvalContext) AddJac(n, m NodeID, d float64) {
	if e.WantJacobian && n.IsFree() && m.IsFree() {
		e.J.Addf(int(n), int(m), d)
	}
}

// System is the assembled ODE-form circuit: C·ẋ = -f(x, t), with the
// capacitance factorization cached for repeated solves.
type System struct {
	Ckt *Circuit
	N   int
	C   *linalg.Mat
	CLU *linalg.LU

	railCaps []railCap
	// scratch to avoid per-eval allocation
	fbuf linalg.Vec
	jbuf *linalg.Mat
}

// Assemble builds the System: stamps capacitances (adding parasitics),
// factorizes C, and validates that every node ended up dynamic.
func (c *Circuit) Assemble() (*System, error) {
	n := len(c.nodeNames)
	st := &CapStamper{ckt: c, C: linalg.NewMat(n, n)}
	for _, d := range c.devices {
		d.StampC(st)
	}
	for i := 0; i < n; i++ {
		st.C.Addf(i, i, c.ParasiticCap)
	}
	lu, err := linalg.Factorize(st.C)
	if err != nil {
		return nil, fmt.Errorf("circuit: capacitance matrix singular (is ParasiticCap zero?): %w", err)
	}
	return &System{
		Ckt:      c,
		N:        n,
		C:        st.C,
		CLU:      lu,
		railCaps: st.railCaps,
		fbuf:     linalg.NewVec(n),
		jbuf:     linalg.NewMat(n, n),
	}, nil
}

// EvalF computes f(x, t) (KCL out-currents including Gmin and rail-cap
// source terms) into dst. dst may be nil, in which case a new vector is
// returned. The returned slice aliases dst when provided.
func (s *System) EvalF(x linalg.Vec, t float64, dst linalg.Vec) linalg.Vec {
	if dst == nil {
		dst = linalg.NewVec(s.N)
	}
	dst.Zero()
	ctx := &EvalContext{ckt: s.Ckt, T: t, X: x, F: dst, GminScale: 1, SourceScale: 1}
	for _, d := range s.Ckt.devices {
		d.Eval(ctx)
	}
	s.addImplicitTerms(ctx)
	return dst
}

// EvalFJ computes f and its Jacobian J = df/dx at (x, t).
func (s *System) EvalFJ(x linalg.Vec, t float64, f linalg.Vec, j *linalg.Mat) {
	f.Zero()
	j.Zero()
	ctx := &EvalContext{ckt: s.Ckt, T: t, X: x, F: f, J: j, WantJacobian: true, GminScale: 1, SourceScale: 1}
	for _, d := range s.Ckt.devices {
		d.Eval(ctx)
	}
	s.addImplicitTerms(ctx)
}

// EvalScaled is EvalFJ with gmin/source continuation scaling, for the DC
// operating-point solver.
func (s *System) EvalScaled(x linalg.Vec, t float64, f linalg.Vec, j *linalg.Mat, gminScale, srcScale float64) {
	f.Zero()
	wantJ := j != nil
	if wantJ {
		j.Zero()
	}
	ctx := &EvalContext{ckt: s.Ckt, T: t, X: x, F: f, J: j, WantJacobian: wantJ, GminScale: gminScale, SourceScale: srcScale}
	for _, d := range s.Ckt.devices {
		d.Eval(ctx)
	}
	s.addImplicitTerms(ctx)
}

func (s *System) addImplicitTerms(ctx *EvalContext) {
	g := s.Ckt.Gmin * ctx.GminScale
	for i := 0; i < s.N; i++ {
		ctx.F[i] += g * ctx.X[i]
		if ctx.WantJacobian {
			ctx.J.Addf(i, i, g)
		}
	}
	for _, rc := range s.railCaps {
		ctx.F[rc.node] -= rc.cap * s.Ckt.railDVDt(rc.rail, ctx.T)
	}
}

// XDot computes ẋ = -C⁻¹·f(x, t), the ODE right-hand side.
func (s *System) XDot(x linalg.Vec, t float64) linalg.Vec {
	f := s.EvalF(x, t, s.fbuf)
	f.Scale(-1)
	return s.CLU.Solve(f)
}

// RHSJacobian computes A(t) = d(ẋ)/dx = -C⁻¹·J(x, t), used by monodromy and
// adjoint (PPV) integration.
func (s *System) RHSJacobian(x linalg.Vec, t float64) *linalg.Mat {
	s.EvalFJ(x, t, s.fbuf, s.jbuf)
	a := linalg.NewMat(s.N, s.N)
	for j := 0; j < s.N; j++ {
		col := s.CLU.Solve(s.jbuf.Col(j))
		for i := 0; i < s.N; i++ {
			a.Set(i, j, -col[i])
		}
	}
	return a
}

// InjectionGain returns the vector mapping a current injected *into* free
// node k to the ODE right-hand side: ẋ += gain·I. (gain = C⁻¹·e_k.)
func (s *System) InjectionGain(k int) linalg.Vec {
	e := linalg.NewVec(s.N)
	e[k] = 1
	return s.CLU.Solve(e)
}

// Describe returns a one-line summary, useful in logs and errors.
func (s *System) Describe() string {
	return fmt.Sprintf("circuit with %d free nodes, %d rails, %d devices",
		s.N, len(s.Ckt.rails), len(s.Ckt.devices))
}

// MaxCap returns the largest diagonal capacitance — a natural scale for
// time-step heuristics.
func (s *System) MaxCap() float64 {
	m := 0.0
	for i := 0; i < s.N; i++ {
		if c := math.Abs(s.C.At(i, i)); c > m {
			m = c
		}
	}
	return m
}
