// Package circuit provides the circuit-equation substrate for the PHLOGON
// design tools. Circuits are described as a set of nodes and devices and are
// assembled into the ODE form
//
//	C·dx/dt = -f(x, t)
//
// where x are the free node voltages, C is the (constant, symmetric positive
// definite) capacitance matrix, and f collects all resistive and source
// currents flowing out of each node (Kirchhoff's current law). This is the
// paper's DAE (eq. 1) specialized to circuits in which every free node
// carries capacitance — true by construction here, because a configurable
// parasitic capacitance is added to any node that would otherwise be purely
// algebraic. Index-0 form keeps the PSS, monodromy, and PPV machinery exact.
//
// Supply rails and level-based logic inputs (EN, CLK) are "fixed" nodes with
// prescribed, possibly time-varying, potentials; they contribute no unknowns.
package circuit

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/linalg"
	"repro/internal/linalg/sparse"
)

// NodeID identifies a circuit node. IDs ≥ 0 index free (unknown-voltage)
// nodes; IDs < 0 index fixed nodes (rails). The ground rail is predefined.
type NodeID int

// Ground is the reference rail at 0 V, present in every circuit.
const Ground NodeID = -1

// IsFree reports whether the node is a free unknown.
func (n NodeID) IsFree() bool { return n >= 0 }

// Rail describes a fixed node: a prescribed potential V(t) and its time
// derivative (needed when capacitors attach to time-varying rails).
type Rail struct {
	Name string
	V    func(t float64) float64
	DVDt func(t float64) float64 // optional; nil means numerically differentiated
	// TimeScale is the characteristic time over which V(t) varies (e.g. the
	// waveform period). When DVDt is nil, the numeric differentiation step is
	// taken relative to this scale (h = TimeScale·railDiffRel) instead of the
	// legacy absolute step, which is wrong for rails much faster or much
	// slower than nanoseconds. Zero keeps the legacy absolute step.
	TimeScale float64
}

// Device is a circuit element. StampC is called once at assembly time to
// contribute constant capacitances; Eval is called at every (x, t) to
// contribute KCL currents and, when ctx.WantJacobian, their derivatives.
type Device interface {
	Label() string
	StampC(c *CapStamper)
	Eval(ctx *EvalContext)
}

// Circuit is a netlist of free nodes, rails, and devices.
type Circuit struct {
	nodeNames []string
	nodeIndex map[string]int
	rails     []Rail
	railIndex map[string]int
	devices   []Device

	// ParasiticCap is added from every free node to ground so that the
	// capacitance matrix is nonsingular (default 1 pF; see package doc).
	ParasiticCap float64
	// Gmin is a small conductance added from every free node to ground for
	// Newton robustness (default 1e-12 S).
	Gmin float64
}

// New returns an empty circuit with default parasitics.
func New() *Circuit {
	return &Circuit{
		nodeIndex:    map[string]int{},
		railIndex:    map[string]int{},
		ParasiticCap: 1e-12,
		Gmin:         1e-12,
	}
}

// Node returns the NodeID for name, creating a free node on first use.
func (c *Circuit) Node(name string) NodeID {
	if name == "0" || name == "gnd" || name == "GND" {
		return Ground
	}
	if i, ok := c.railIndex[name]; ok {
		return NodeID(-2 - i)
	}
	if i, ok := c.nodeIndex[name]; ok {
		return NodeID(i)
	}
	i := len(c.nodeNames)
	c.nodeNames = append(c.nodeNames, name)
	c.nodeIndex[name] = i
	return NodeID(i)
}

// AddRail registers a fixed node with a prescribed potential and returns its
// NodeID. Registering must happen before the name is used as a free node.
func (c *Circuit) AddRail(name string, v func(t float64) float64) NodeID {
	if _, ok := c.nodeIndex[name]; ok {
		panic(fmt.Sprintf("circuit: node %q already exists as a free node", name))
	}
	if i, ok := c.railIndex[name]; ok {
		c.rails[i].V = v
		return NodeID(-2 - i)
	}
	i := len(c.rails)
	c.rails = append(c.rails, Rail{Name: name, V: v})
	c.railIndex[name] = i
	return NodeID(-2 - i)
}

// AddDCRail registers a fixed node at a constant potential.
func (c *Circuit) AddDCRail(name string, v float64) NodeID {
	id := c.AddRail(name, func(float64) float64 { return v })
	c.rails[-2-int(id)].DVDt = func(float64) float64 { return 0 }
	return id
}

// AddRailDeriv registers a fixed node with a prescribed potential and its
// analytic time derivative, avoiding numeric differentiation entirely.
func (c *Circuit) AddRailDeriv(name string, v, dvdt func(t float64) float64) NodeID {
	id := c.AddRail(name, v)
	c.rails[-2-int(id)].DVDt = dvdt
	return id
}

// SetRailTimeScale declares the characteristic timescale of a time-varying
// rail (typically its period), making the numeric dV/dt step relative to it.
// Panics when id is not a registered rail.
func (c *Circuit) SetRailTimeScale(id NodeID, tau float64) {
	if id.IsFree() || id == Ground {
		panic("circuit: SetRailTimeScale requires a rail NodeID")
	}
	if tau <= 0 {
		panic("circuit: rail timescale must be positive")
	}
	c.rails[-2-int(id)].TimeScale = tau
}

// Add appends devices to the circuit.
func (c *Circuit) Add(devs ...Device) {
	c.devices = append(c.devices, devs...)
}

// NumNodes returns the number of free nodes (the ODE dimension).
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NodeName returns the name of free node i.
func (c *Circuit) NodeName(i int) string { return c.nodeNames[i] }

// NodeIndex returns the index of the named free node, or -1.
func (c *Circuit) NodeIndex(name string) int {
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	return -1
}

// Devices returns the device list (shared slice; treat as read-only).
func (c *Circuit) Devices() []Device { return c.devices }

// RailVoltage evaluates the potential of a non-free node at time t.
func (c *Circuit) RailVoltage(n NodeID, t float64) float64 {
	if n == Ground {
		return 0
	}
	return c.rails[-2-int(n)].V(t)
}

// railDiffRel is the central-difference step as a fraction of a rail's
// declared timescale: truncation error ~ (2π·railDiffRel)²/6 ≈ 7e-6 relative
// for a sinusoid, while keeping the step far above float64 granularity.
const railDiffRel = 1e-3

// railDiffAbs is the legacy absolute step used when no timescale is known.
const railDiffAbs = 1e-9

// railDVDt evaluates dV/dt of a non-free node at time t. Rails with an
// analytic DVDt use it directly; otherwise a central difference is taken
// with a step relative to the rail's TimeScale when declared (falling back
// to the legacy absolute step, which is only appropriate for rails varying
// on roughly nanosecond scales).
func (c *Circuit) railDVDt(n NodeID, t float64) float64 {
	if n == Ground {
		return 0
	}
	r := c.rails[-2-int(n)]
	if r.DVDt != nil {
		return r.DVDt(t)
	}
	h := railDiffAbs
	if r.TimeScale > 0 {
		h = r.TimeScale * railDiffRel
	}
	return (r.V(t+h) - r.V(t-h)) / (2 * h)
}

// CapStamper accumulates the constant capacitance matrix.
type CapStamper struct {
	ckt *Circuit
	C   *linalg.Mat
	// railCaps[i] lists capacitances from free node i to time-varying rails;
	// they contribute source currents C·dVrail/dt.
	railCaps []railCap
}

type railCap struct {
	node int
	rail NodeID
	cap  float64
}

// AddCap stamps a two-terminal capacitance between nodes a and b.
func (s *CapStamper) AddCap(a, b NodeID, cap float64) {
	if cap < 0 {
		panic("circuit: negative capacitance")
	}
	if a.IsFree() {
		s.C.Addf(int(a), int(a), cap)
	}
	if b.IsFree() {
		s.C.Addf(int(b), int(b), cap)
	}
	if a.IsFree() && b.IsFree() {
		s.C.Addf(int(a), int(b), -cap)
		s.C.Addf(int(b), int(a), -cap)
	}
	// A capacitor to a moving rail injects C·dVrail/dt into the free node.
	if a.IsFree() && !b.IsFree() && b != Ground {
		s.railCaps = append(s.railCaps, railCap{int(a), b, cap})
	}
	if b.IsFree() && !a.IsFree() && a != Ground {
		s.railCaps = append(s.railCaps, railCap{int(b), a, cap})
	}
}

// EvalContext carries the operating point to Device.Eval and accumulates
// KCL currents F (out of each node) and their Jacobian J = dF/dx. The
// Jacobian lands in exactly one of three sinks: the dense J matrix (the
// historical path, bit-identical), the sparse SJ values (the
// linalg.BackendSparse stamp path), or a pattern recorder (position-only,
// used once per topology to precompute the sparsity pattern).
type EvalContext struct {
	ckt          *Circuit
	T            float64
	X            linalg.Vec
	F            linalg.Vec
	J            *linalg.Mat
	SJ           *sparse.CSC      // sparse Jacobian sink; nil on the dense path
	rec          *patternRecorder // position recorder; nil outside pattern capture
	WantJacobian bool
	// GminScale scales the circuit Gmin (used by gmin continuation).
	GminScale float64
	// SourceScale scales all independent sources (source stepping); devices
	// honoring it multiply their source values by it.
	SourceScale float64
}

// V returns the voltage of any node at the context's (x, t).
func (e *EvalContext) V(n NodeID) float64 {
	if n.IsFree() {
		return e.X[int(n)]
	}
	return e.ckt.RailVoltage(n, e.T)
}

// AddCurrent adds a current i flowing out of node n into the device.
func (e *EvalContext) AddCurrent(n NodeID, i float64) {
	if n.IsFree() {
		e.F[int(n)] += i
	}
}

// AddJac adds dI(out of n)/dV(m) to the Jacobian.
func (e *EvalContext) AddJac(n, m NodeID, d float64) {
	if !e.WantJacobian || !n.IsFree() || !m.IsFree() {
		return
	}
	if e.rec != nil {
		e.rec.add(int(n), int(m))
		return
	}
	if e.SJ != nil {
		e.SJ.Add(int(n), int(m), d)
		return
	}
	e.J.Addf(int(n), int(m), d)
}

// System is the assembled ODE-form circuit: C·ẋ = -f(x, t), with the
// capacitance factorization cached for repeated solves.
//
// A System is immutable after Assemble: it holds only the read-only
// structure (circuit, capacitance matrix and its factorization, rail-cap
// list), so any number of analyses may share one System concurrently. All
// per-evaluation scratch lives in Workspace values obtained from
// NewWorkspace; the Eval*/XDot/RHSJacobian methods on System itself are
// allocation-per-call conveniences that are likewise safe for concurrent
// use.
type System struct {
	Ckt *Circuit
	N   int
	C   *linalg.Mat
	CLU *linalg.LU

	railCaps []railCap

	// Sparse-backend artifacts, computed once on first use (sync.Once keeps
	// the System immutable-in-effect and race-free): the structural Jacobian
	// pattern (union of device stamps, C, and the diagonal), C's values on
	// that pattern, and a sparse factorization of C. Small circuits that
	// never leave the dense backend never pay for any of this.
	sparseOnce    sync.Once
	sparsePattern *sparse.Pattern
	sparseC       *sparse.CSC
}

// Assemble builds the System: stamps capacitances (adding parasitics),
// factorizes C, and validates that every node ended up dynamic.
func (c *Circuit) Assemble() (*System, error) {
	n := len(c.nodeNames)
	st := &CapStamper{ckt: c, C: linalg.NewMat(n, n)}
	for _, d := range c.devices {
		d.StampC(st)
	}
	for i := 0; i < n; i++ {
		st.C.Addf(i, i, c.ParasiticCap)
	}
	lu, err := linalg.Factorize(st.C)
	if err != nil {
		return nil, fmt.Errorf("circuit: capacitance matrix singular (is ParasiticCap zero?): %w", err)
	}
	return &System{
		Ckt:      c,
		N:        n,
		C:        st.C,
		CLU:      lu,
		railCaps: st.railCaps,
	}, nil
}

// evalInto runs every device plus the implicit terms against a prepared
// context — the single evaluation core shared by System and Workspace.
func (s *System) evalInto(ctx *EvalContext) {
	for _, d := range s.Ckt.devices {
		d.Eval(ctx)
	}
	g := s.Ckt.Gmin * ctx.GminScale
	for i := 0; i < s.N; i++ {
		ctx.F[i] += g * ctx.X[i]
		if ctx.WantJacobian {
			ctx.AddJac(NodeID(i), NodeID(i), g)
		}
	}
	for _, rc := range s.railCaps {
		ctx.F[rc.node] -= rc.cap * s.Ckt.railDVDt(rc.rail, ctx.T)
	}
}

// EvalF computes f(x, t) (KCL out-currents including Gmin and rail-cap
// source terms) into dst. dst may be nil, in which case a new vector is
// returned. The returned slice aliases dst when provided. Hot paths should
// prefer Workspace.EvalF, which reuses the evaluation context.
func (s *System) EvalF(x linalg.Vec, t float64, dst linalg.Vec) linalg.Vec {
	if dst == nil {
		dst = linalg.NewVec(s.N)
	}
	dst.Zero()
	ctx := &EvalContext{ckt: s.Ckt, T: t, X: x, F: dst, GminScale: 1, SourceScale: 1}
	s.evalInto(ctx)
	return dst
}

// EvalFJ computes f and its Jacobian J = df/dx at (x, t).
func (s *System) EvalFJ(x linalg.Vec, t float64, f linalg.Vec, j *linalg.Mat) {
	f.Zero()
	j.Zero()
	ctx := &EvalContext{ckt: s.Ckt, T: t, X: x, F: f, J: j, WantJacobian: true, GminScale: 1, SourceScale: 1}
	s.evalInto(ctx)
}

// EvalScaled is EvalFJ with gmin/source continuation scaling, for the DC
// operating-point solver.
func (s *System) EvalScaled(x linalg.Vec, t float64, f linalg.Vec, j *linalg.Mat, gminScale, srcScale float64) {
	f.Zero()
	wantJ := j != nil
	if wantJ {
		j.Zero()
	}
	ctx := &EvalContext{ckt: s.Ckt, T: t, X: x, F: f, J: j, WantJacobian: wantJ, GminScale: gminScale, SourceScale: srcScale}
	s.evalInto(ctx)
}

// XDot computes ẋ = -C⁻¹·f(x, t), the ODE right-hand side. It allocates per
// call and is safe for concurrent use; hot loops should use Workspace.XDot.
func (s *System) XDot(x linalg.Vec, t float64) linalg.Vec {
	f := s.EvalF(x, t, nil)
	f.Scale(-1)
	return s.CLU.Solve(f)
}

// RHSJacobian computes A(t) = d(ẋ)/dx = -C⁻¹·J(x, t), used by monodromy and
// adjoint (PPV) integration. It allocates per call and is safe for
// concurrent use; hot loops should use Workspace.RHSJacobian.
func (s *System) RHSJacobian(x linalg.Vec, t float64) *linalg.Mat {
	return s.NewWorkspace().RHSJacobian(x, t)
}

// InjectionGain returns the vector mapping a current injected *into* free
// node k to the ODE right-hand side: ẋ += gain·I. (gain = C⁻¹·e_k.)
func (s *System) InjectionGain(k int) linalg.Vec {
	e := linalg.NewVec(s.N)
	e[k] = 1
	return s.CLU.Solve(e)
}

// Describe returns a one-line summary, useful in logs and errors.
func (s *System) Describe() string {
	return fmt.Sprintf("circuit with %d free nodes, %d rails, %d devices",
		s.N, len(s.Ckt.rails), len(s.Ckt.devices))
}

// MaxCap returns the largest diagonal capacitance — a natural scale for
// time-step heuristics.
func (s *System) MaxCap() float64 {
	m := 0.0
	for i := 0; i < s.N; i++ {
		if c := math.Abs(s.C.At(i, i)); c > m {
			m = c
		}
	}
	return m
}
