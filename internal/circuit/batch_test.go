package circuit_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/linalg"
	"repro/internal/ringosc"
)

// cornerSystems builds K congruent ring systems with per-lane parameter
// spreads (Beta, VT0, CLoad), the shape variation Monte Carlo produces.
func cornerSystems(t testing.TB, k int) []*circuit.System {
	t.Helper()
	systems := make([]*circuit.System, k)
	for i := 0; i < k; i++ {
		cfg := ringosc.DefaultConfig()
		d := float64(i) - float64(k)/2
		cfg.NMOS.Beta *= 1 + 0.05*d
		cfg.PMOS.VT0 *= 1 + 0.02*d
		cfg.CLoad *= 1 + 0.08*d
		r, err := ringosc.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		systems[i] = r.Sys
	}
	return systems
}

// TestEvalFJBatchBitEqualsScalar is the tentpole property test: a batched
// lane must bit-equal the scalar EvalFJ of the same corner — residual and
// every Jacobian entry, at random operating points.
func TestEvalFJBatchBitEqualsScalar(t *testing.T) {
	const K = 5
	systems := cornerSystems(t, K)
	b, err := circuit.NewBatch(systems)
	if err != nil {
		t.Fatal(err)
	}
	if b.Fallbacks != 0 {
		t.Fatalf("ring batch used %d fallback kernels, want 0 (MOSFET/Capacitor are batched)", b.Fallbacks)
	}
	bw := b.NewWorkspace()
	n := b.N
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, K*n)
	f := linalg.NewVec(n)
	j := linalg.NewMat(n, n)
	jb := linalg.NewMat(n, n)
	for trial := 0; trial < 25; trial++ {
		for i := range x {
			x[i] = 3 * rng.Float64() // 0..Vdd operating points, both swap orientations
		}
		tm := rng.Float64() * 1e-4
		bw.EvalFJBatch(x, tm)
		for k := 0; k < K; k++ {
			ws := systems[k].NewWorkspace()
			ws.EvalFJ(linalg.Vec(x[k*n:(k+1)*n]), tm, f, j)
			for i := 0; i < n; i++ {
				if got, want := bw.LaneF(k)[i], f[i]; got != want {
					t.Fatalf("trial %d lane %d F[%d]: batch %v != scalar %v", trial, k, i, got, want)
				}
			}
			bw.LaneJDense(jb, k)
			for r := 0; r < n; r++ {
				for c := 0; c < n; c++ {
					if got, want := jb.At(r, c), j.At(r, c); got != want {
						t.Fatalf("trial %d lane %d J[%d,%d]: batch %v != scalar %v", trial, k, r, c, got, want)
					}
				}
			}
		}
	}
}

// mixedSystems builds K congruent systems exercising rails, sources
// (fallback kernels), resistors, conductors and a VCCS alongside MOSFETs.
func mixedSystems(t testing.TB, k int) []*circuit.System {
	t.Helper()
	systems := make([]*circuit.System, k)
	for i := 0; i < k; i++ {
		scale := 1 + 0.1*float64(i)
		c := circuit.New()
		vdd := c.AddDCRail("vdd", 3)
		a, bn := c.Node("a"), c.Node("b")
		c.Add(
			&device.Resistor{Name: "rl", A: vdd, B: a, R: 10e3 * scale},
			&device.MOSFET{Name: "mn", D: a, G: bn, S: circuit.Ground,
				Params: device.ALD1106()},
			&device.Conductor{Name: "gx", A: a, B: bn, G: 1e-5 * scale},
			&device.VCCS{Name: "vc", CtrlP: a, CtrlN: circuit.Ground, OutP: bn, OutN: circuit.Ground, Gm: 2e-5 * scale},
			&device.Capacitor{Name: "ca", A: a, B: circuit.Ground, C: 1e-9 * scale},
			&device.Capacitor{Name: "cb", A: bn, B: circuit.Ground, C: 1e-9},
			&device.SineCurrent{Name: "inj", From: circuit.Ground, To: bn, Amp: 1e-6 * scale, Freq: 10e3},
		)
		sys, err := c.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		systems[i] = sys
	}
	return systems
}

// TestEvalFJBatchMixedDevices covers the scalar fallback path (sources) and
// rail-connected kernels: still bit-identical per lane.
func TestEvalFJBatchMixedDevices(t *testing.T) {
	const K = 4
	systems := mixedSystems(t, K)
	b, err := circuit.NewBatch(systems)
	if err != nil {
		t.Fatal(err)
	}
	if b.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1 (the sine source)", b.Fallbacks)
	}
	bw := b.NewWorkspace()
	n := b.N
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, K*n)
	f := linalg.NewVec(n)
	j := linalg.NewMat(n, n)
	jb := linalg.NewMat(n, n)
	for trial := 0; trial < 10; trial++ {
		for i := range x {
			x[i] = -1 + 5*rng.Float64()
		}
		tm := rng.Float64() * 1e-3
		bw.EvalFJBatch(x, tm)
		for k := 0; k < K; k++ {
			ws := systems[k].NewWorkspace()
			ws.EvalFJ(linalg.Vec(x[k*n:(k+1)*n]), tm, f, j)
			bw.LaneJDense(jb, k)
			for i := 0; i < n; i++ {
				if bw.LaneF(k)[i] != f[i] {
					t.Fatalf("lane %d F[%d]: batch %v != scalar %v", k, i, bw.LaneF(k)[i], f[i])
				}
			}
			for r := 0; r < n; r++ {
				for c := 0; c < n; c++ {
					if jb.At(r, c) != j.At(r, c) {
						t.Fatalf("lane %d J[%d,%d]: batch %v != scalar %v", k, r, c, jb.At(r, c), j.At(r, c))
					}
				}
			}
		}
	}
}

// TestBatchActiveMask checks that inactive lanes are left untouched while
// active lanes get exactly their full-batch values.
func TestBatchActiveMask(t *testing.T) {
	const K = 4
	systems := cornerSystems(t, K)
	b, err := circuit.NewBatch(systems)
	if err != nil {
		t.Fatal(err)
	}
	n := b.N
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, K*n)
	for i := range x {
		x[i] = 3 * rng.Float64()
	}
	full := b.NewWorkspace()
	full.EvalFJBatch(x, 0)

	masked := b.NewWorkspace()
	sentinel := math.NaN()
	for i := range masked.F {
		masked.F[i] = sentinel
	}
	masked.SetActive([]int{1, 3})
	masked.EvalFJBatch(x, 0)
	for _, k := range []int{1, 3} {
		for i := 0; i < n; i++ {
			if masked.LaneF(k)[i] != full.LaneF(k)[i] {
				t.Fatalf("active lane %d F[%d] differs under mask", k, i)
			}
		}
	}
	for _, k := range []int{0, 2} {
		for i := 0; i < n; i++ {
			if !math.IsNaN(masked.LaneF(k)[i]) {
				t.Fatalf("inactive lane %d F[%d] was written", k, i)
			}
		}
	}
}

// TestNewBatchIncongruent rejects topology mismatches.
func TestNewBatchIncongruent(t *testing.T) {
	cfgA := ringosc.DefaultConfig()
	cfgB := ringosc.DefaultConfig()
	cfgB.Stages = 5
	ra, err := ringosc.Build(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ringosc.Build(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := circuit.NewBatch([]*circuit.System{ra.Sys, rb.Sys}); err == nil {
		t.Fatal("5-stage lane accepted into 3-stage batch")
	}
	if _, err := circuit.NewBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestBatchWorkspaceRaceIndependence runs several workspaces of one shared
// Batch concurrently (run under -race) and checks results match a serial
// reference evaluation.
func TestBatchWorkspaceRaceIndependence(t *testing.T) {
	const K = 3
	systems := cornerSystems(t, K)
	b, err := circuit.NewBatch(systems)
	if err != nil {
		t.Fatal(err)
	}
	n := b.N
	const workers = 6
	xs := make([][]float64, workers)
	want := make([][]float64, workers)
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(100 + w)))
		x := make([]float64, K*n)
		for i := range x {
			x[i] = 3 * rng.Float64()
		}
		xs[w] = x
		ref := b.NewWorkspace()
		ref.EvalFJBatch(x, 1e-5)
		want[w] = append([]float64(nil), ref.F...)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bw := b.NewWorkspace()
			for rep := 0; rep < 50; rep++ {
				bw.EvalFJBatch(xs[w], 1e-5)
			}
			for i := range bw.F {
				if bw.F[i] != want[w][i] {
					t.Errorf("worker %d F[%d] diverged under concurrency", w, i)
					return
				}
			}
			_ = errs
		}(w)
	}
	wg.Wait()
}
