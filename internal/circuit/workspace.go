package circuit

import (
	"repro/internal/diag"
	"repro/internal/linalg"
	"repro/internal/linalg/sparse"
)

// Workspace holds every piece of mutable per-evaluation scratch needed to
// run analyses against a (shared, immutable) System: the reusable
// EvalContext handed to devices plus F/J buffers for the derived quantities
// XDot and RHSJacobian.
//
// A Workspace is NOT safe for concurrent use — that is its whole point: give
// each worker goroutine its own Workspace via System.NewWorkspace() and any
// number of analyses of the same circuit can run in parallel with zero
// shared mutable state. Creating a Workspace is cheap (two small buffers),
// so per-analysis creation is the normal pattern.
type Workspace struct {
	sys *System
	ctx EvalContext // reused across evaluations to avoid per-call allocation
	// scratch for XDot / RHSJacobian
	fbuf linalg.Vec
	jbuf *linalg.Mat
	// Sparse-branch scratch (lazy; only sparse-backend analyses pay for it):
	// a private Jacobian value array on the shared pattern, a private sparse
	// factorization of C, and a gather/solve column buffer.
	sjbuf *sparse.CSC
	sclu  *sparse.LU
	scol  linalg.Vec
	// m counts circuit evaluations when diagnostics are enabled (nil
	// otherwise — the nil-safe methods make the disabled path a pointer
	// test).
	m *diag.Metrics
}

// SetMetrics attaches a diagnostics collector; every subsequent evaluation
// through this workspace increments CircuitEvals (and CircuitJacEvals when
// the Jacobian is stamped). A nil m disables counting.
func (w *Workspace) SetMetrics(m *diag.Metrics) { w.m = m }

// NewWorkspace returns a fresh, independent evaluation workspace for the
// system. Each concurrent analysis should own exactly one.
func (s *System) NewWorkspace() *Workspace {
	return &Workspace{
		sys:  s,
		ctx:  EvalContext{ckt: s.Ckt},
		fbuf: linalg.NewVec(s.N),
		jbuf: linalg.NewMat(s.N, s.N),
	}
}

// System returns the shared immutable system the workspace evaluates.
func (w *Workspace) System() *System { return w.sys }

// eval prepares the reusable context and runs the evaluation core.
func (w *Workspace) eval(x linalg.Vec, t float64, f linalg.Vec, j *linalg.Mat, wantJ bool, gminScale, srcScale float64) {
	w.m.Inc(diag.CircuitEvals)
	if wantJ {
		w.m.Inc(diag.CircuitJacEvals)
	}
	w.ctx.T = t
	w.ctx.X = x
	w.ctx.F = f
	w.ctx.J = j
	w.ctx.WantJacobian = wantJ
	w.ctx.GminScale = gminScale
	w.ctx.SourceScale = srcScale
	w.sys.evalInto(&w.ctx)
	// Drop slice references so the workspace does not pin caller buffers.
	w.ctx.X, w.ctx.F, w.ctx.J = nil, nil, nil
}

// EvalF computes f(x, t) into dst (allocated when nil), exactly like
// System.EvalF but reusing the workspace's evaluation context.
func (w *Workspace) EvalF(x linalg.Vec, t float64, dst linalg.Vec) linalg.Vec {
	if dst == nil {
		dst = linalg.NewVec(w.sys.N)
	}
	dst.Zero()
	w.eval(x, t, dst, nil, false, 1, 1)
	return dst
}

// EvalFJ computes f and its Jacobian J = df/dx at (x, t).
func (w *Workspace) EvalFJ(x linalg.Vec, t float64, f linalg.Vec, j *linalg.Mat) {
	f.Zero()
	j.Zero()
	w.eval(x, t, f, j, true, 1, 1)
}

// EvalScaled is EvalFJ under gmin/source continuation scaling; j may be nil
// when only the residual is needed.
func (w *Workspace) EvalScaled(x linalg.Vec, t float64, f linalg.Vec, j *linalg.Mat, gminScale, srcScale float64) {
	f.Zero()
	wantJ := j != nil
	if wantJ {
		j.Zero()
	}
	w.eval(x, t, f, j, wantJ, gminScale, srcScale)
}

// XDot computes ẋ = -C⁻¹·f(x, t) using workspace scratch for the residual.
// The returned vector is freshly allocated (callers retain XDot results).
func (w *Workspace) XDot(x linalg.Vec, t float64) linalg.Vec {
	return w.XDotInto(linalg.NewVec(w.sys.N), x, t)
}

// XDotInto is XDot writing into dst (which must not alias x): hot loops pass
// a pinned destination and the evaluation touches only workspace scratch.
// Safe concurrently across workspaces — the shared System.CLU factorization
// is read-only under SolveInto.
func (w *Workspace) XDotInto(dst linalg.Vec, x linalg.Vec, t float64) linalg.Vec {
	f := w.EvalF(x, t, w.fbuf)
	f.Scale(-1)
	return w.sys.CLU.SolveInto(dst, f)
}

// RHSJacobian computes A(t) = d(ẋ)/dx = -C⁻¹·J(x, t) using workspace
// scratch for the evaluation; the returned matrix is freshly allocated.
func (w *Workspace) RHSJacobian(x linalg.Vec, t float64) *linalg.Mat {
	n := w.sys.N
	return w.RHSJacobianInto(linalg.NewMat(n, n), x, t)
}

// RHSJacobianInto is RHSJacobian writing into dst (n×n, not aliasing the
// workspace's Jacobian buffer). Bitwise identical to RHSJacobian: the
// column-wise substitution order of SolveMatInto matches the historical
// per-column Solve loop exactly.
func (w *Workspace) RHSJacobianInto(dst *linalg.Mat, x linalg.Vec, t float64) *linalg.Mat {
	w.EvalFJ(x, t, w.fbuf, w.jbuf)
	w.sys.CLU.SolveMatInto(dst, w.jbuf)
	dst.Scale(-1)
	return dst
}

// evalSparse mirrors eval with the sparse Jacobian sink installed; a nil sj
// evaluates the residual only (line-search trials).
func (w *Workspace) evalSparse(x linalg.Vec, t float64, f linalg.Vec, sj *sparse.CSC, gminScale, srcScale float64) {
	w.m.Inc(diag.CircuitEvals)
	if sj != nil {
		w.m.Inc(diag.CircuitJacEvals)
	}
	w.ctx.T = t
	w.ctx.X = x
	w.ctx.F = f
	w.ctx.SJ = sj
	w.ctx.WantJacobian = sj != nil
	w.ctx.GminScale = gminScale
	w.ctx.SourceScale = srcScale
	w.sys.evalInto(&w.ctx)
	w.ctx.X, w.ctx.F, w.ctx.SJ = nil, nil, nil
}

// EvalFJSparse computes f and stamps the Jacobian df/dx directly into the
// CSC value array sj (which must live on the system's SparsePattern). This
// is the sparse-backend analogue of EvalFJ: same devices, same arithmetic,
// values landing in O(nnz) storage instead of an n×n matrix.
func (w *Workspace) EvalFJSparse(x linalg.Vec, t float64, f linalg.Vec, sj *sparse.CSC) {
	f.Zero()
	sj.Zero()
	w.evalSparse(x, t, f, sj, 1, 1)
}

// EvalScaledSparse is EvalFJSparse under gmin/source continuation scaling,
// the stamp path behind the sparse DC-operating-point branch; sj may be nil
// when only the residual is needed.
func (w *Workspace) EvalScaledSparse(x linalg.Vec, t float64, f linalg.Vec, sj *sparse.CSC, gminScale, srcScale float64) {
	f.Zero()
	if sj != nil {
		sj.Zero()
	}
	w.evalSparse(x, t, f, sj, gminScale, srcScale)
}

// ensureSparse lazily builds the workspace's private sparse scratch: the
// Jacobian value array on the shared pattern, a pinned factorization of C,
// and the gather column. Only sparse-backend analyses call this.
func (w *Workspace) ensureSparse() error {
	if w.sjbuf != nil {
		return nil
	}
	w.sjbuf = sparse.NewCSC(w.sys.SparsePattern())
	w.scol = linalg.NewVec(w.sys.N)
	w.sclu = &sparse.LU{}
	return w.sclu.FactorizeInto(w.sys.SparseC())
}

// RHSJacobianSparseInto computes A(t) = −C⁻¹·J(x, t) into the dense dst via
// the sparse stamp path: J is stamped into O(nnz) storage and each of its
// sparse columns is solved against the workspace's pinned sparse
// factorization of C — O(n·|C factors|) instead of the dense O(n³)-flavored
// SolveMat. dst must be n×n. The result agrees with RHSJacobianInto to
// factorization roundoff (the elimination order differs, so it is not
// bit-identical — use the dense path where bit-stability is contractual).
func (w *Workspace) RHSJacobianSparseInto(dst *linalg.Mat, x linalg.Vec, t float64) (*linalg.Mat, error) {
	n := w.sys.N
	if dst.Rows != n || dst.Cols != n {
		panic("circuit: RHSJacobianSparseInto dimension mismatch")
	}
	if err := w.ensureSparse(); err != nil {
		return nil, err
	}
	w.EvalFJSparse(x, t, w.fbuf, w.sjbuf)
	p := w.sjbuf.P
	for j := 0; j < n; j++ {
		col := w.scol
		col.Zero()
		for k := p.ColPtr[j]; k < p.ColPtr[j+1]; k++ {
			col[p.Rows[k]] = -w.sjbuf.Val[k]
		}
		w.sclu.SolveInto(col, col)
		for i := 0; i < n; i++ {
			dst.Set(i, j, col[i])
		}
	}
	return dst, nil
}
