package circuit

import (
	"repro/internal/diag"
	"repro/internal/linalg"
)

// Workspace holds every piece of mutable per-evaluation scratch needed to
// run analyses against a (shared, immutable) System: the reusable
// EvalContext handed to devices plus F/J buffers for the derived quantities
// XDot and RHSJacobian.
//
// A Workspace is NOT safe for concurrent use — that is its whole point: give
// each worker goroutine its own Workspace via System.NewWorkspace() and any
// number of analyses of the same circuit can run in parallel with zero
// shared mutable state. Creating a Workspace is cheap (two small buffers),
// so per-analysis creation is the normal pattern.
type Workspace struct {
	sys *System
	ctx EvalContext // reused across evaluations to avoid per-call allocation
	// scratch for XDot / RHSJacobian
	fbuf linalg.Vec
	jbuf *linalg.Mat
	// m counts circuit evaluations when diagnostics are enabled (nil
	// otherwise — the nil-safe methods make the disabled path a pointer
	// test).
	m *diag.Metrics
}

// SetMetrics attaches a diagnostics collector; every subsequent evaluation
// through this workspace increments CircuitEvals (and CircuitJacEvals when
// the Jacobian is stamped). A nil m disables counting.
func (w *Workspace) SetMetrics(m *diag.Metrics) { w.m = m }

// NewWorkspace returns a fresh, independent evaluation workspace for the
// system. Each concurrent analysis should own exactly one.
func (s *System) NewWorkspace() *Workspace {
	return &Workspace{
		sys:  s,
		ctx:  EvalContext{ckt: s.Ckt},
		fbuf: linalg.NewVec(s.N),
		jbuf: linalg.NewMat(s.N, s.N),
	}
}

// System returns the shared immutable system the workspace evaluates.
func (w *Workspace) System() *System { return w.sys }

// eval prepares the reusable context and runs the evaluation core.
func (w *Workspace) eval(x linalg.Vec, t float64, f linalg.Vec, j *linalg.Mat, wantJ bool, gminScale, srcScale float64) {
	w.m.Inc(diag.CircuitEvals)
	if wantJ {
		w.m.Inc(diag.CircuitJacEvals)
	}
	w.ctx.T = t
	w.ctx.X = x
	w.ctx.F = f
	w.ctx.J = j
	w.ctx.WantJacobian = wantJ
	w.ctx.GminScale = gminScale
	w.ctx.SourceScale = srcScale
	w.sys.evalInto(&w.ctx)
	// Drop slice references so the workspace does not pin caller buffers.
	w.ctx.X, w.ctx.F, w.ctx.J = nil, nil, nil
}

// EvalF computes f(x, t) into dst (allocated when nil), exactly like
// System.EvalF but reusing the workspace's evaluation context.
func (w *Workspace) EvalF(x linalg.Vec, t float64, dst linalg.Vec) linalg.Vec {
	if dst == nil {
		dst = linalg.NewVec(w.sys.N)
	}
	dst.Zero()
	w.eval(x, t, dst, nil, false, 1, 1)
	return dst
}

// EvalFJ computes f and its Jacobian J = df/dx at (x, t).
func (w *Workspace) EvalFJ(x linalg.Vec, t float64, f linalg.Vec, j *linalg.Mat) {
	f.Zero()
	j.Zero()
	w.eval(x, t, f, j, true, 1, 1)
}

// EvalScaled is EvalFJ under gmin/source continuation scaling; j may be nil
// when only the residual is needed.
func (w *Workspace) EvalScaled(x linalg.Vec, t float64, f linalg.Vec, j *linalg.Mat, gminScale, srcScale float64) {
	f.Zero()
	wantJ := j != nil
	if wantJ {
		j.Zero()
	}
	w.eval(x, t, f, j, wantJ, gminScale, srcScale)
}

// XDot computes ẋ = -C⁻¹·f(x, t) using workspace scratch for the residual.
// The returned vector is freshly allocated (callers retain XDot results).
func (w *Workspace) XDot(x linalg.Vec, t float64) linalg.Vec {
	return w.XDotInto(linalg.NewVec(w.sys.N), x, t)
}

// XDotInto is XDot writing into dst (which must not alias x): hot loops pass
// a pinned destination and the evaluation touches only workspace scratch.
// Safe concurrently across workspaces — the shared System.CLU factorization
// is read-only under SolveInto.
func (w *Workspace) XDotInto(dst linalg.Vec, x linalg.Vec, t float64) linalg.Vec {
	f := w.EvalF(x, t, w.fbuf)
	f.Scale(-1)
	return w.sys.CLU.SolveInto(dst, f)
}

// RHSJacobian computes A(t) = d(ẋ)/dx = -C⁻¹·J(x, t) using workspace
// scratch for the evaluation; the returned matrix is freshly allocated.
func (w *Workspace) RHSJacobian(x linalg.Vec, t float64) *linalg.Mat {
	n := w.sys.N
	return w.RHSJacobianInto(linalg.NewMat(n, n), x, t)
}

// RHSJacobianInto is RHSJacobian writing into dst (n×n, not aliasing the
// workspace's Jacobian buffer). Bitwise identical to RHSJacobian: the
// column-wise substitution order of SolveMatInto matches the historical
// per-column Solve loop exactly.
func (w *Workspace) RHSJacobianInto(dst *linalg.Mat, x linalg.Vec, t float64) *linalg.Mat {
	w.EvalFJ(x, t, w.fbuf, w.jbuf)
	w.sys.CLU.SolveMatInto(dst, w.jbuf)
	dst.Scale(-1)
	return dst
}
