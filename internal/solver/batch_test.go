package solver_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/linalg"
	"repro/internal/solver"
)

// dcCornerSystems builds K congruent common-source stages with per-lane
// parameter spreads — a circuit with a unique, well-defined DC solution.
func dcCornerSystems(t testing.TB, k int) []*circuit.System {
	t.Helper()
	systems := make([]*circuit.System, k)
	for i := 0; i < k; i++ {
		scale := 1 + 0.15*float64(i)
		c := circuit.New()
		vdd := c.AddDCRail("vdd", 3)
		a, bn := c.Node("a"), c.Node("b")
		c.Add(
			&device.Resistor{Name: "rl", A: vdd, B: a, R: 10e3 * scale},
			&device.Resistor{Name: "rb", A: vdd, B: bn, R: 50e3},
			&device.Resistor{Name: "rg", A: bn, B: circuit.Ground, R: 30e3 * scale},
			&device.MOSFET{Name: "mn", D: a, G: bn, S: circuit.Ground, Params: device.ALD1106()},
			&device.Capacitor{Name: "ca", A: a, B: circuit.Ground, C: 1e-9},
		)
		sys, err := c.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		systems[i] = sys
	}
	return systems
}

// TestDCOperatingPointBatchMatchesScalar drives K corners through the
// batched masked Newton and compares each lane with the scalar DC solve.
func TestDCOperatingPointBatchMatchesScalar(t *testing.T) {
	const K = 5
	systems := dcCornerSystems(t, K)
	b, err := circuit.NewBatch(systems)
	if err != nil {
		t.Fatal(err)
	}
	n := b.N
	x, errs := solver.DCOperatingPointBatch(b, nil, 0)
	for k := 0; k < K; k++ {
		if errs[k] != nil {
			t.Fatalf("lane %d: %v", k, errs[k])
		}
		want, serr := solver.DCOperatingPoint(systems[k], nil, 0)
		if serr != nil {
			t.Fatalf("scalar lane %d: %v", k, serr)
		}
		for i := 0; i < n; i++ {
			if d := math.Abs(x[k*n+i] - want[i]); d > 1e-7*(1+math.Abs(want[i])) {
				t.Errorf("lane %d x[%d]: batch %v vs scalar %v", k, i, x[k*n+i], want[i])
			}
		}
	}
	// Distinct corners must land on distinct operating points.
	if x[0] == x[(K-1)*n] {
		t.Error("corner lanes returned identical DC node voltages")
	}
}

// TestDCOperatingPointBatchSeeded checks the lane-major seed path converges
// to the same solution as the unseeded one.
func TestDCOperatingPointBatchSeeded(t *testing.T) {
	const K = 3
	systems := dcCornerSystems(t, K)
	b, err := circuit.NewBatch(systems)
	if err != nil {
		t.Fatal(err)
	}
	n := b.N
	ref, errs := solver.DCOperatingPointBatchCtx(context.Background(), b, nil, 0, linalg.BackendAuto)
	for k, e := range errs {
		if e != nil {
			t.Fatalf("lane %d: %v", k, e)
		}
	}
	seed := make([]float64, K*n)
	for i := range seed {
		seed[i] = 1.2
	}
	got, errs := solver.DCOperatingPointBatchCtx(context.Background(), b, seed, 0, linalg.BackendAuto)
	for k, e := range errs {
		if e != nil {
			t.Fatalf("seeded lane %d: %v", k, e)
		}
	}
	for i := range ref {
		if d := math.Abs(got[i] - ref[i]); d > 1e-6 {
			t.Errorf("seeded solve diverged at %d: %v vs %v", i, got[i], ref[i])
		}
	}
}
