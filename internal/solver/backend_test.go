package solver_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/linalg/sparse"
	"repro/internal/ringosc"
	"repro/internal/solver"
)

// TestDCOperatingPointBackendsAgree solves the same DC problem through the
// dense and the sparse escalation ladders and requires matching operating
// points: both backends stamp identical device equations, so they must find
// the same equilibrium to factorization roundoff.
func TestDCOperatingPointBackendsAgree(t *testing.T) {
	arr, err := ringosc.BuildArray(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	xd, err := solver.DCOperatingPointBackendCtx(ctx, arr.Sys, nil, 0, linalg.BackendDense)
	if err != nil {
		t.Fatalf("dense: %v", err)
	}
	xs, err := solver.DCOperatingPointBackendCtx(ctx, arr.Sys, nil, 0, linalg.BackendSparse)
	if err != nil {
		t.Fatalf("sparse: %v", err)
	}
	for i := range xd {
		if d := math.Abs(xd[i] - xs[i]); d > 1e-8 {
			t.Fatalf("operating points differ at node %d by %g (%g vs %g)", i, d, xd[i], xs[i])
		}
	}
	// The auto path on this small circuit must be exactly the dense result.
	xa, err := solver.DCOperatingPointCtx(ctx, arr.Sys, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xd {
		if xa[i] != xd[i] {
			t.Fatalf("auto and dense DC differ at node %d", i)
		}
	}
}

// TestSolveSparseWithScratchReuse re-runs a sparse Newton solve through one
// warm scratch and requires bit-identical iterates: the symbolic
// factorization is computed once and the numeric refactor must reproduce the
// cold factorization exactly (the solver-level refactor-correctness proof).
func TestSolveSparseWithScratchReuse(t *testing.T) {
	arr, err := ringosc.BuildArray(2)
	if err != nil {
		t.Fatal(err)
	}
	ws := arr.Sys.NewWorkspace()
	pat := arr.Sys.SparsePattern()
	fn := func(x linalg.Vec, f linalg.Vec, sj *sparse.CSC) {
		if sj == nil {
			ws.EvalF(x, 0, f)
			return
		}
		ws.EvalFJSparse(x, 0, f, sj)
	}
	x0 := linalg.NewVec(arr.Sys.N)
	sc := solver.NewSparseScratch(pat)
	x1, st1, err := solver.SolveSparseWith(context.Background(), fn, pat, x0, solver.Options{}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !st1.Converged {
		t.Fatal("sparse Newton did not converge")
	}
	got1 := x1.Clone()
	x2, st2, err := solver.SolveSparseWith(context.Background(), fn, pat, x0, solver.Options{}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Iterations != st1.Iterations {
		t.Fatalf("warm re-solve took %d iterations, cold took %d", st2.Iterations, st1.Iterations)
	}
	for i := range got1 {
		if x2[i] != got1[i] {
			t.Fatalf("warm re-solve not bit-identical at node %d", i)
		}
	}
}
