package solver_test

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/linalg"
	"repro/internal/solver"
)

func TestNewtonScalarRoot(t *testing.T) {
	// f(x) = x² - 4, root at 2.
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
		f[0] = x[0]*x[0] - 4
		if j != nil {
			j.Set(0, 0, 2*x[0])
		}
	}
	x, st, err := solver.Solve(fn, linalg.Vec{5}, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-8 {
		t.Fatalf("root = %g, want 2", x[0])
	}
	if !st.Converged {
		t.Fatal("stats must report convergence")
	}
}

func TestNewtonCoupledSystem(t *testing.T) {
	// x² + y² = 25, x - y = 1 → (4, 3).
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
		f[0] = x[0]*x[0] + x[1]*x[1] - 25
		f[1] = x[0] - x[1] - 1
		if j != nil {
			j.Set(0, 0, 2*x[0])
			j.Set(0, 1, 2*x[1])
			j.Set(1, 0, 1)
			j.Set(1, 1, -1)
		}
	}
	x, _, err := solver.Solve(fn, linalg.Vec{10, 10}, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-4) > 1e-7 || math.Abs(x[1]-3) > 1e-7 {
		t.Fatalf("solution = %v, want (4, 3)", x)
	}
}

func TestNewtonDampingOnStiffFunction(t *testing.T) {
	// tanh-dominated residual defeats undamped Newton from a far start.
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
		f[0] = math.Tanh(5*x[0]) - 0.5
		if j != nil {
			th := math.Tanh(5 * x[0])
			j.Set(0, 0, 5*(1-th*th))
		}
	}
	x, _, err := solver.Solve(fn, linalg.Vec{0.6}, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := math.Atanh(0.5) / 5
	if math.Abs(x[0]-want) > 1e-7 {
		t.Fatalf("root = %g, want %g", x[0], want)
	}
}

func TestDCOperatingPointDivider(t *testing.T) {
	c := circuit.New()
	vdd := c.AddDCRail("vdd", 3.0)
	n1 := c.Node("n1")
	c.Add(
		&device.Resistor{Name: "r1", A: vdd, B: n1, R: 1e3},
		&device.Resistor{Name: "r2", A: n1, B: circuit.Ground, R: 2e3},
	)
	sys, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	x, err := solver.DCOperatingPoint(sys, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2.0) > 1e-6 {
		t.Fatalf("divider voltage = %g, want 2", x[0])
	}
}

func TestDCOperatingPointInverterMidrail(t *testing.T) {
	// CMOS inverter with input tied to output (diode-connected pair)
	// settles near mid-rail — the classic self-biased inverter.
	c := circuit.New()
	vdd := c.AddDCRail("vdd", 3.0)
	out := c.Node("out")
	c.Add(
		&device.MOSFET{Name: "mn", D: out, G: out, S: circuit.Ground, Params: device.ALD1106()},
		&device.MOSFET{Name: "mp", D: out, G: out, S: vdd, Params: device.ALD1107(), PMOS: true},
	)
	sys, err := c.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	x, err := solver.DCOperatingPoint(sys, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] < 1.0 || x[0] > 2.0 {
		t.Fatalf("self-biased inverter output = %g, want near mid-rail", x[0])
	}
	// KCL must balance.
	f := sys.EvalF(x, 0, nil)
	if f.NormInf() > 1e-8 {
		t.Fatalf("residual = %g", f.NormInf())
	}
}

func TestDCSolveFallsBackToContinuation(t *testing.T) {
	// A residual whose plain Newton diverges from 0 but is tamed by
	// source stepping: f(x) = atan(20(x-2))·srcScale + (x-2)·1e-3·gmin.
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat, gminScale, srcScale float64) {
		f[0] = math.Atan(20*(x[0]-2))*srcScale + 1e-6*gminScale*x[0]
		if j != nil {
			d := 20/(1+400*(x[0]-2)*(x[0]-2))*srcScale + 1e-6*gminScale
			j.Set(0, 0, d)
		}
	}
	x, err := solver.DCSolve(fn, linalg.Vec{50}, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-2 {
		t.Fatalf("continuation landed at %g, want ≈2", x[0])
	}
}
