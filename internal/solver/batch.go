package solver

import (
	"context"
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/diag"
	"repro/internal/linalg"
	"repro/internal/linalg/sparse"
)

// This file implements batched DC operating points over a circuit.Batch: a
// masked, damped Newton iteration drives K parameter corners through shared
// structure-of-arrays evaluations (one EvalScaledBatch per iteration and per
// line-search trial, instead of K scalar evaluations each). Lanes leave the
// active set as they converge; lanes the plain-Newton stage cannot crack
// fall back to the scalar continuation ladder (gmin stepping, then source
// stepping) via DCOperatingPointBackendCtx, so the batched entry point is
// exactly as robust as the scalar one.

// DCOperatingPointBatch computes a DC solution for every lane of b at time t
// (sources at t, capacitors open). x0 is the lane-major seed; nil starts all
// lanes from zero. It returns the lane-major solution and per-lane errors
// (errs[k] non-nil when neither the batched Newton nor the scalar
// continuation ladder converged lane k; that lane's block is its last
// iterate).
func DCOperatingPointBatch(b *circuit.Batch, x0 []float64, t float64) ([]float64, []error) {
	return DCOperatingPointBatchCtx(context.Background(), b, x0, t, linalg.BackendAuto)
}

// DCOperatingPointBatchCtx is DCOperatingPointBatch with cost diagnostics
// carried by ctx and an explicit linear-algebra backend selection.
func DCOperatingPointBatchCtx(ctx context.Context, b *circuit.Batch, x0 []float64, t float64, backend linalg.Backend) ([]float64, []error) {
	defer diag.SpanFrom(ctx, "dcop.batch").End()
	dm := diag.FromContext(ctx)
	K, n := b.K, b.N
	nnz := b.Pattern().NNZ()
	opt := DefaultOptions()

	x := make([]float64, K*n)
	if x0 != nil {
		copy(x, x0)
	}
	errs := make([]error, K)
	bw := b.NewWorkspace()
	bw.SetMetrics(dm)
	dm.Add(diag.NewtonSolves, int64(K))

	useSparse := b.Systems[0].ResolveBackend(backend) == linalg.BackendSparse
	var jac *linalg.Mat
	var lus []linalg.LU
	var slus []sparse.LU
	if useSparse {
		slus = make([]sparse.LU, K)
	} else {
		jac = linalg.NewMat(n, n)
		lus = make([]linalg.LU, K)
	}
	pat := b.Pattern()

	xTry := make([]float64, K*n)
	dxs := make([]float64, K*n)
	res := make([]float64, K)
	lambda := make([]float64, K)
	dxv := linalg.NewVec(n)

	active := make([]int, 0, K)
	for k := 0; k < K; k++ {
		active = append(active, k)
	}
	searching := make([]int, 0, K)
	laneNormInf := func(v []float64) float64 {
		m := 0.0
		for _, e := range v {
			if a := math.Abs(e); a > m {
				m = a
			}
		}
		return m
	}

	for iter := 0; iter < opt.MaxIter && len(active) > 0; iter++ {
		bw.SetActive(active)
		bw.EvalScaledBatch(x, t, true, 1, 1)
		w := 0
		for _, k := range active {
			base := k * n
			f := bw.LaneF(k)
			res[k] = laneNormInf(f)
			if iter == 0 {
				bad := false
				for i, v := range f {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						errs[k] = fmt.Errorf("%w: initial residual is not finite (f[%d] = %g)", ErrNoConvergence, i, v)
						bad = true
						break
					}
				}
				if bad {
					continue
				}
			}
			if res[k] <= opt.AbsTol {
				continue // converged; drop from the active set
			}
			// Factorize and solve this lane's Newton correction.
			var serr error
			var dx linalg.Vec
			if useSparse {
				serr = slus[k].FactorizeInto(bw.LaneJ(k))
				if slus[k].ReusedSymbolic() {
					dm.Inc(diag.SparseRefactors)
				} else {
					dm.Inc(diag.SparseFactorizations)
					dm.Add(diag.SparseFillIns, int64(slus[k].FillIn()))
				}
				if serr == nil {
					dx = slus[k].SolveInto(dxv, linalg.Vec(f))
				}
			} else {
				jac.Zero()
				jb := k * nnz
				for j := 0; j < n; j++ {
					for p := pat.ColPtr[j]; p < pat.ColPtr[j+1]; p++ {
						jac.Data[pat.Rows[p]*n+j] = bw.JV[jb+p]
					}
				}
				serr = lus[k].FactorizeInto(jac)
				dm.Inc(diag.LUFactorizations)
				if lus[k].ReusedBuffers() {
					dm.Inc(diag.LUFactorizationsReused)
				}
				if serr == nil {
					dx = lus[k].SolveInto(dxv, linalg.Vec(f))
				}
			}
			if serr != nil {
				errs[k] = fmt.Errorf("solver: singular Jacobian at iteration %d: %w", iter, serr)
				continue
			}
			dm.Inc(diag.LUSolves)
			dx.Scale(-1)
			if opt.MaxStep > 0 {
				if mx := dx.NormInf(); mx > opt.MaxStep {
					dx.Scale(opt.MaxStep / mx)
				}
			}
			copy(dxs[base:base+n], dx)
			lambda[k] = 1
			active[w] = k
			w++
		}
		active = active[:w]
		if len(active) == 0 {
			break
		}

		// Batched line search: every still-searching lane's trial state is
		// evaluated in one residual-only batch call; lanes accept
		// independently and halve their own λ otherwise.
		searching = append(searching[:0], active...)
		accepted := 0
		for ls := 0; ls < 12 && len(searching) > 0; ls++ {
			for _, k := range searching {
				base := k * n
				for i := 0; i < n; i++ {
					xTry[base+i] = x[base+i] + lambda[k]*dxs[base+i]
				}
			}
			bw.SetActive(searching)
			bw.EvalScaledBatch(xTry, t, false, 1, 1)
			w := 0
			for _, k := range searching {
				base := k * n
				newRes := laneNormInf(bw.LaneF(k))
				if newRes < res[k] || newRes <= opt.AbsTol {
					copy(x[base:base+n], xTry[base:base+n])
					res[k] = newRes
					accepted++
					continue
				}
				lambda[k] /= 2
				dm.Inc(diag.NewtonBacktracks)
				searching[w] = k
				w++
			}
			searching = searching[:w]
		}
		// Residual would not decrease for the holdouts: accept the tiny step
		// anyway (some strongly nonlinear corners pass through a ridge).
		for _, k := range searching {
			base := k * n
			copy(x[base:base+n], xTry[base:base+n])
		}
		dm.Add(diag.NewtonIterations, int64(len(active)))

		// Stagnation: a vanishing step with a near-tolerance residual.
		w = 0
		for _, k := range active {
			base := k * n
			if lambda[k]*laneNormInf(dxs[base:base+n]) <= opt.RelTol*(1+laneNormInf(x[base:base+n])) && res[k] <= 100*opt.AbsTol {
				continue
			}
			active[w] = k
			w++
		}
		active = active[:w]
	}

	// Scalar continuation-ladder fallback for whatever the batched plain
	// Newton left behind (near-tolerance stragglers included: the ladder's
	// first rung is plain Newton from the batched iterate, so it's cheap).
	for _, k := range active {
		if errs[k] != nil {
			continue
		}
		if res[k] <= 10*opt.AbsTol {
			continue // close enough for continuation purposes (solveCore's rule)
		}
		errs[k] = fmt.Errorf("%w (residual %.3g)", ErrNoConvergence, res[k])
	}
	for k := 0; k < K; k++ {
		if errs[k] == nil {
			continue
		}
		base := k * n
		seed := append(linalg.Vec(nil), x[base:base+n]...)
		xs, err := DCOperatingPointBackendCtx(ctx, b.Systems[k], seed, t, backend)
		if err != nil {
			errs[k] = fmt.Errorf("solver: batched DC lane %d: %w", k, err)
			continue
		}
		copy(x[base:base+n], xs)
		errs[k] = nil
	}
	return x, errs
}
