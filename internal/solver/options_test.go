package solver_test

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/solver"
)

func TestNewtonMaxStepClamp(t *testing.T) {
	// With a huge first Newton step, the clamp must keep iterates bounded
	// while still converging: f(x) = 1e-6·(x − 1000).
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
		f[0] = 1e-6 * (x[0] - 1000)
		if j != nil {
			j.Set(0, 0, 1e-6)
		}
	}
	opt := solver.DefaultOptions()
	opt.MaxStep = 10
	opt.MaxIter = 200
	opt.AbsTol = 1e-12
	x, st, err := solver.Solve(fn, linalg.Vec{0}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1000) > 1e-3 {
		t.Fatalf("x = %g, want 1000", x[0])
	}
	// The clamp forces ≥ 100 iterations of ≤10 each.
	if st.Iterations < 100 {
		t.Fatalf("expected ≥100 clamped iterations, got %d", st.Iterations)
	}
}

func TestNewtonReportsNonConvergence(t *testing.T) {
	// No root: f(x) = x² + 1 (minimum 1 at 0) — Solve must error, and the
	// stats must carry the residual.
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
		f[0] = x[0]*x[0] + 1
		if j != nil {
			j.Set(0, 0, 2*x[0]+1e-3) // keep the Jacobian nonsingular
		}
	}
	opt := solver.DefaultOptions()
	opt.MaxIter = 15
	_, st, err := solver.Solve(fn, linalg.Vec{3}, opt)
	if err == nil && st.Residual > 10*opt.AbsTol {
		t.Fatal("rootless system must not report success with a large residual")
	}
	if st.Residual < 0.5 && err != nil {
		t.Fatalf("residual should stay near ≥1, got %g", st.Residual)
	}
}

func TestDefaultOptionsSane(t *testing.T) {
	opt := solver.DefaultOptions()
	if opt.MaxIter <= 0 || opt.AbsTol <= 0 || opt.RelTol <= 0 || !opt.Damping {
		t.Fatalf("suspicious defaults: %+v", opt)
	}
}
