package solver_test

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/solver"
)

func TestNewtonMaxStepClamp(t *testing.T) {
	// With a huge first Newton step, the clamp must keep iterates bounded
	// while still converging: f(x) = 1e-6·(x − 1000).
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
		f[0] = 1e-6 * (x[0] - 1000)
		if j != nil {
			j.Set(0, 0, 1e-6)
		}
	}
	opt := solver.DefaultOptions()
	opt.MaxStep = 10
	opt.MaxIter = 200
	opt.AbsTol = 1e-12
	x, st, err := solver.Solve(fn, linalg.Vec{0}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1000) > 1e-3 {
		t.Fatalf("x = %g, want 1000", x[0])
	}
	// The clamp forces ≥ 100 iterations of ≤10 each.
	if st.Iterations < 100 {
		t.Fatalf("expected ≥100 clamped iterations, got %d", st.Iterations)
	}
}

func TestNewtonReportsNonConvergence(t *testing.T) {
	// No root: f(x) = x² + 1 (minimum 1 at 0) — Solve must error, and the
	// stats must carry the residual.
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
		f[0] = x[0]*x[0] + 1
		if j != nil {
			j.Set(0, 0, 2*x[0]+1e-3) // keep the Jacobian nonsingular
		}
	}
	opt := solver.DefaultOptions()
	opt.MaxIter = 15
	_, st, err := solver.Solve(fn, linalg.Vec{3}, opt)
	if err == nil && st.Residual > 10*opt.AbsTol {
		t.Fatal("rootless system must not report success with a large residual")
	}
	if st.Residual < 0.5 && err != nil {
		t.Fatalf("residual should stay near ≥1, got %g", st.Residual)
	}
}

func TestDefaultOptionsSane(t *testing.T) {
	opt := solver.DefaultOptions()
	if opt.MaxIter <= 0 || opt.AbsTol <= 0 || opt.RelTol <= 0 || opt.NoDamping || opt.MaxStep <= 0 {
		t.Fatalf("suspicious defaults: %+v", opt)
	}
}

func TestPartialOptionsKeepCallerFields(t *testing.T) {
	// Regression: Solve used to replace the ENTIRE Options with
	// DefaultOptions() whenever MaxIter was zero, silently discarding any
	// tolerances the caller did set. A loose caller-set AbsTol with a
	// defaulted MaxIter must now be honored.
	//
	// f(x) = x³ near 0 converges slowly (Newton contracts by only 1/3 per
	// step) so the residual trajectory cleanly separates the two tolerances.
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
		f[0] = x[0] * x[0] * x[0]
		if j != nil {
			j.Set(0, 0, 3*x[0]*x[0]+1e-30)
		}
	}
	loose, tight := solver.Options{AbsTol: 1e-6, RelTol: 1e-300}, solver.Options{AbsTol: 1e-12, RelTol: 1e-300}
	_, stLoose, err := solver.Solve(fn, linalg.Vec{1}, loose)
	if err != nil {
		t.Fatal(err)
	}
	_, stTight, err := solver.Solve(fn, linalg.Vec{1}, tight)
	if err != nil {
		t.Fatal(err)
	}
	if !stLoose.Converged || stLoose.Residual > 1e-6 {
		t.Fatalf("loose solve: %+v", stLoose)
	}
	// If the caller's AbsTol had been clobbered back to the default, both
	// runs would stop after the same number of iterations.
	if stLoose.Iterations >= stTight.Iterations {
		t.Fatalf("caller AbsTol ignored: loose took %d iterations, tight took %d",
			stLoose.Iterations, stTight.Iterations)
	}
}

func TestNegativeMaxStepDisablesClamp(t *testing.T) {
	// MaxStep < 0 means "no clamp": the 1000-unit first Newton step of
	// f(x) = 1e-6·(x − 1000) must land in one iteration.
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
		f[0] = 1e-6 * (x[0] - 1000)
		if j != nil {
			j.Set(0, 0, 1e-6)
		}
	}
	opt := solver.Options{MaxStep: -1, AbsTol: 1e-12}
	x, st, err := solver.Solve(fn, linalg.Vec{0}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1000) > 1e-3 {
		t.Fatalf("x = %g, want 1000", x[0])
	}
	if st.Iterations > 2 {
		t.Fatalf("unclamped solve took %d iterations, want ≤2", st.Iterations)
	}
}
