package solver

import (
	"repro/internal/circuit"
	"repro/internal/linalg"
)

// DCOperatingPoint computes a DC solution of the assembled circuit at time t
// (sources evaluated at t, capacitors open). x0 seeds the iteration; nil
// starts from all-zeros.
func DCOperatingPoint(sys *circuit.System, x0 linalg.Vec, t float64) (linalg.Vec, error) {
	if x0 == nil {
		x0 = linalg.NewVec(sys.N)
	}
	ws := sys.NewWorkspace()
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat, gminScale, srcScale float64) {
		ws.EvalScaled(x, t, f, j, gminScale, srcScale)
	}
	return DCSolve(fn, x0, DefaultOptions())
}
