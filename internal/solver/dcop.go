package solver

import (
	"context"

	"repro/internal/circuit"
	"repro/internal/diag"
	"repro/internal/linalg"
	"repro/internal/linalg/sparse"
)

// DCOperatingPoint computes a DC solution of the assembled circuit at time t
// (sources evaluated at t, capacitors open). x0 seeds the iteration; nil
// starts from all-zeros.
func DCOperatingPoint(sys *circuit.System, x0 linalg.Vec, t float64) (linalg.Vec, error) {
	return DCOperatingPointCtx(context.Background(), sys, x0, t)
}

// DCOperatingPointCtx is DCOperatingPoint with cost diagnostics: the solve
// runs under a "dcop" span and counts circuit/Newton/LU work on the metrics
// carried by ctx. The linear-algebra backend is auto-resolved: large
// circuits run the sparse escalation ladder, small ones the (bit-stable)
// dense one.
func DCOperatingPointCtx(ctx context.Context, sys *circuit.System, x0 linalg.Vec, t float64) (linalg.Vec, error) {
	return DCOperatingPointBackendCtx(ctx, sys, x0, t, linalg.BackendAuto)
}

// DCOperatingPointBackendCtx is DCOperatingPointCtx with an explicit
// linear-algebra backend selection.
func DCOperatingPointBackendCtx(ctx context.Context, sys *circuit.System, x0 linalg.Vec, t float64, backend linalg.Backend) (linalg.Vec, error) {
	defer diag.SpanFrom(ctx, "dcop").End()
	if x0 == nil {
		x0 = linalg.NewVec(sys.N)
	}
	ws := sys.NewWorkspace()
	ws.SetMetrics(diag.FromContext(ctx))
	// One scratch serves the whole escalation ladder; it dies with this call,
	// so the returned alias into it is safely caller-owned.
	if sys.ResolveBackend(backend) == linalg.BackendSparse {
		pat := sys.SparsePattern()
		fn := func(x linalg.Vec, f linalg.Vec, sj *sparse.CSC, gminScale, srcScale float64) {
			ws.EvalScaledSparse(x, t, f, sj, gminScale, srcScale)
		}
		return DCSolveSparseWith(ctx, fn, pat, x0, DefaultOptions(), NewSparseScratch(pat))
	}
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat, gminScale, srcScale float64) {
		ws.EvalScaled(x, t, f, j, gminScale, srcScale)
	}
	return DCSolveWith(ctx, fn, x0, DefaultOptions(), NewScratch(sys.N))
}
