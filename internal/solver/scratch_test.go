package solver_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/solver"
)

// cubicFn is a mildly nonlinear diagonal system f_i = x_i + x_i³ − b_i whose
// evaluation allocates nothing — the probe for scratch allocation tests.
func cubicFn(b linalg.Vec) solver.Func {
	return func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
		for i := range x {
			f[i] = x[i] + x[i]*x[i]*x[i] - b[i]
			if j != nil {
				j.Set(i, i, 1+3*x[i]*x[i])
			}
		}
	}
}

func TestWarmScratchNewtonZeroAllocs(t *testing.T) {
	const n = 12
	b := linalg.NewVec(n)
	x0 := linalg.NewVec(n)
	for i := range b {
		b[i] = 0.5 + 0.1*float64(i)
		x0[i] = 0.1
	}
	fn := cubicFn(b)
	sc := solver.NewScratch(n)
	ctx := context.Background()
	// Warm up once (pins the LU factors on first factorization).
	if _, st, err := solver.SolveWith(ctx, fn, x0, solver.Options{}, sc); err != nil || !st.Converged {
		t.Fatalf("warm-up solve: converged=%v err=%v", st.Converged, err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := solver.SolveWith(ctx, fn, x0, solver.Options{}, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm scratch Newton solve allocated %.0f times per run, want 0", allocs)
	}
}

func TestScratchSolveMatchesScratchless(t *testing.T) {
	const n = 6
	b := linalg.NewVec(n)
	x0 := linalg.NewVec(n)
	for i := range b {
		b[i] = 1 + float64(i)
	}
	fn := cubicFn(b)
	ctx := context.Background()
	plain, _, err := solver.SolveCtx(ctx, fn, x0, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	scratched, _, err := solver.SolveWith(ctx, fn, x0, solver.Options{}, solver.NewScratch(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != scratched[i] {
			t.Fatalf("iterate %d differs: %x vs %x (scratch changed arithmetic)", i, plain[i], scratched[i])
		}
	}
}

func TestInitialResidualNotFiniteBailsOut(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
			f[0] = bad
			if j != nil {
				j.Set(0, 0, bad)
			}
		}
		_, _, err := solver.Solve(fn, linalg.Vec{0}, solver.DefaultOptions())
		if err == nil {
			t.Fatalf("bad=%g: expected an error", bad)
		}
		if !errors.Is(err, solver.ErrNoConvergence) {
			t.Errorf("bad=%g: error %v is not ErrNoConvergence", bad, err)
		}
		if errors.Is(err, linalg.ErrSingular) {
			t.Errorf("bad=%g: non-finite residual misdiagnosed as a singular Jacobian: %v", bad, err)
		}
	}
}

// stiffResid is the saturating transfer characteristic of a MOSFET stage
// driven deep into its flat region: from a far start the Jacobian is nearly
// zero, the clamped Newton step overshoots the active region, and the line
// search must backtrack several times per iteration.
func stiffResid(x float64) float64 { return math.Tanh(5*x) - 0.5 }
func stiffSlope(x float64) float64 {
	th := math.Tanh(5 * x)
	return 5 * (1 - th*th)
}

// TestLineSearchTrialsSkipJacobian pins the backtracking contract: trial
// points are evaluated residual-only (nil Jacobian), every Jacobian-carrying
// evaluation happens at a point the iteration keeps, and there is at most
// one Jacobian evaluation per accepted iteration — so a factorization can
// never see the Jacobian of a rejected backtracking candidate.
func TestLineSearchTrialsSkipJacobian(t *testing.T) {
	var jacEvals, trialEvals int
	var lastKept float64 // most recent Jacobian point; must track the iterate
	fn := func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
		f[0] = stiffResid(x[0])
		if j != nil {
			j.Set(0, 0, stiffSlope(x[0]))
			jacEvals++
			lastKept = x[0]
		} else {
			trialEvals++
		}
	}
	x, st, err := solver.Solve(fn, linalg.Vec{2}, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := math.Atanh(0.5) / 5
	if math.Abs(x[0]-want) > 1e-8 {
		t.Fatalf("root %g, want %g", x[0], want)
	}
	if trialEvals <= st.Iterations {
		t.Fatal("test premise broken: the stiff corner no longer triggers backtracking")
	}
	// Freshness invariant: at most one Jacobian evaluation per accepted
	// iteration (plus the initial one) — never one per line-search trial.
	if jacEvals > st.Iterations+1 {
		t.Errorf("%d Jacobian evaluations for %d iterations: Jacobians evaluated during backtracking",
			jacEvals, st.Iterations)
	}
	// The final Jacobian point must be an accepted iterate near the solution
	// (the refresh skips the last, already-converged step, so allow one
	// quadratic-phase Newton step of slack). A stale-trial Jacobian would
	// leave lastKept at a rejected λ<1 candidate far from the root.
	if jacEvals > 1 && math.Abs(lastKept-x[0]) > 1e-3 {
		t.Errorf("last Jacobian evaluated at %g, final iterate %g", lastKept, x[0])
	}
}

// staleNewton mimics the historical solver: f AND J evaluated at every
// line-search trial, so each iteration pays a full Jacobian assembly per
// backtrack. The regression test below compares its Jacobian-work count
// against the current solver on the same stiff corner.
func staleNewton(fn solver.Func, x0 linalg.Vec, opt solver.Options) (linalg.Vec, int, error) {
	n := len(x0)
	x := x0.Clone()
	f := linalg.NewVec(n)
	j := linalg.NewMat(n, n)
	xTry := linalg.NewVec(n)
	fTry := linalg.NewVec(n)
	fn(x, f, j)
	res := f.NormInf()
	for iter := 0; iter < opt.MaxIter; iter++ {
		if res <= opt.AbsTol {
			return x, iter, nil
		}
		lu, err := linalg.Factorize(j)
		if err != nil {
			return x, iter, err
		}
		dx := lu.Solve(f)
		dx.Scale(-1)
		if mx := dx.NormInf(); mx > opt.MaxStep {
			dx.Scale(opt.MaxStep / mx)
		}
		lambda := 1.0
		for ls := 0; ls < 12; ls++ {
			for i := range xTry {
				xTry[i] = x[i] + lambda*dx[i]
			}
			fn(xTry, fTry, j) // the historical staleness: J at every trial
			if r := fTry.NormInf(); r < res || r <= opt.AbsTol {
				break
			}
			lambda /= 2
		}
		x.CopyFrom(xTry)
		f.CopyFrom(fTry)
		res = fTry.NormInf()
	}
	return x, opt.MaxIter, errors.New("stale reference did not converge")
}

func TestLineSearchJacobianWorkRegression(t *testing.T) {
	mkFn := func(jacEvals *int) solver.Func {
		return func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
			f[0] = stiffResid(x[0])
			if j != nil {
				*jacEvals++
				j.Set(0, 0, stiffSlope(x[0]))
			}
		}
	}
	opt := solver.DefaultOptions()

	var staleJacs int
	if _, _, err := staleNewton(mkFn(&staleJacs), linalg.Vec{2}, opt); err != nil {
		t.Fatalf("stale reference: %v", err)
	}
	var freshJacs int
	_, st, err := solver.Solve(mkFn(&freshJacs), linalg.Vec{2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("current solver did not converge on the stiff corner")
	}
	// The corner backtracks hard, so the per-trial-Jacobian reference must do
	// strictly more Jacobian assemblies than the residual-only line search.
	if freshJacs >= staleJacs {
		t.Errorf("current solver evaluated %d Jacobians, stale reference %d — no win from nil-Jacobian trials",
			freshJacs, staleJacs)
	}
	if freshJacs > st.Iterations+1 {
		t.Errorf("%d Jacobian evaluations for %d iterations", freshJacs, st.Iterations)
	}
}
