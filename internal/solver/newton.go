// Package solver implements the damped Newton–Raphson iteration and the
// gmin / source-stepping continuation schemes used for DC operating points
// and for the implicit corrector inside transient integration.
package solver

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Options tunes the Newton iteration.
type Options struct {
	MaxIter int     // maximum iterations (default 60)
	AbsTol  float64 // residual ∞-norm tolerance (default 1e-9)
	RelTol  float64 // step-size relative tolerance (default 1e-9)
	Damping bool    // enable line-search damping (default true via DefaultOptions)
	MaxStep float64 // per-iteration ∞-norm clamp on Δx (0 = unlimited)
}

// DefaultOptions returns the standard solver settings.
func DefaultOptions() Options {
	return Options{MaxIter: 60, AbsTol: 1e-9, RelTol: 1e-9, Damping: true, MaxStep: 2.0}
}

// Func evaluates residual f(x) and, when j is non-nil, the Jacobian df/dx.
type Func func(x linalg.Vec, f linalg.Vec, j *linalg.Mat)

// Stats reports what a Newton solve did.
type Stats struct {
	Iterations int
	Residual   float64
	Converged  bool
}

// ErrNoConvergence is returned when the iteration stalls.
var ErrNoConvergence = errors.New("solver: Newton iteration did not converge")

// Solve runs damped Newton–Raphson from x0 and returns the solution.
func Solve(fn Func, x0 linalg.Vec, opt Options) (linalg.Vec, Stats, error) {
	n := len(x0)
	if opt.MaxIter == 0 {
		opt = DefaultOptions()
	}
	x := x0.Clone()
	f := linalg.NewVec(n)
	j := linalg.NewMat(n, n)
	xTry := linalg.NewVec(n)
	fTry := linalg.NewVec(n)

	fn(x, f, j)
	res := f.NormInf()
	st := Stats{Residual: res}
	for iter := 0; iter < opt.MaxIter; iter++ {
		if res <= opt.AbsTol {
			st.Converged = true
			st.Iterations = iter
			st.Residual = res
			return x, st, nil
		}
		lu, err := linalg.Factorize(j)
		if err != nil {
			return x, st, fmt.Errorf("solver: singular Jacobian at iteration %d: %w", iter, err)
		}
		dx := lu.Solve(f)
		dx.Scale(-1)
		if opt.MaxStep > 0 {
			if m := dx.NormInf(); m > opt.MaxStep {
				dx.Scale(opt.MaxStep / m)
			}
		}
		// Line search: halve the step until the residual decreases (or accept
		// a full step when damping is off).
		lambda := 1.0
		accepted := false
		for ls := 0; ls < 12; ls++ {
			for i := range xTry {
				xTry[i] = x[i] + lambda*dx[i]
			}
			fn(xTry, fTry, j) // Jacobian refreshed at the candidate point
			newRes := fTry.NormInf()
			if !opt.Damping || newRes < res || newRes <= opt.AbsTol || math.IsNaN(res) {
				if math.IsNaN(newRes) || math.IsInf(newRes, 0) {
					lambda /= 2
					continue
				}
				x.CopyFrom(xTry)
				f.CopyFrom(fTry)
				res = newRes
				accepted = true
				break
			}
			lambda /= 2
		}
		if !accepted {
			// Residual would not decrease: accept the tiny step anyway; some
			// strongly nonlinear corners need to pass through a ridge.
			x.CopyFrom(xTry)
			f.CopyFrom(fTry)
			res = fTry.NormInf()
		}
		st.Iterations = iter + 1
		// Step-based convergence: a vanishing Newton step with finite
		// residual indicates stagnation at machine precision.
		if lambda*dx.NormInf() <= opt.RelTol*(1+x.NormInf()) && res <= 100*opt.AbsTol {
			st.Converged = true
			st.Residual = res
			return x, st, nil
		}
	}
	st.Residual = res
	if res <= 10*opt.AbsTol { // close enough for continuation purposes
		st.Converged = true
		return x, st, nil
	}
	return x, st, fmt.Errorf("%w (residual %.3g after %d iterations)", ErrNoConvergence, res, st.Iterations)
}

// ScaledFunc evaluates residual/Jacobian under continuation scaling
// (gminScale multiplies the stabilizing shunt conductances, srcScale
// multiplies all independent sources).
type ScaledFunc func(x linalg.Vec, f linalg.Vec, j *linalg.Mat, gminScale, srcScale float64)

// DCSolve finds a DC solution of fn using plain Newton first, then gmin
// stepping, then source stepping — the standard SPICE escalation ladder.
func DCSolve(fn ScaledFunc, x0 linalg.Vec, opt Options) (linalg.Vec, error) {
	plain := func(g, s float64) Func {
		return func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) { fn(x, f, j, g, s) }
	}
	if x, _, err := Solve(plain(1, 1), x0, opt); err == nil {
		return x, nil
	}
	// Gmin stepping: start with heavy shunts and relax geometrically.
	x := x0.Clone()
	ok := true
	for _, g := range []float64{1e9, 1e7, 1e5, 1e3, 1e2, 10, 1} {
		var err error
		x, _, err = Solve(plain(g, 1), x, opt)
		if err != nil {
			ok = false
			break
		}
	}
	if ok {
		return x, nil
	}
	// Source stepping: ramp sources from 0.
	x = x0.Clone()
	for _, s := range []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0} {
		var err error
		x, _, err = Solve(plain(1, s), x, opt)
		if err != nil {
			return nil, fmt.Errorf("solver: DC continuation failed at source scale %g: %w", s, err)
		}
	}
	return x, nil
}
