// Package solver implements the damped Newton–Raphson iteration and the
// gmin / source-stepping continuation schemes used for DC operating points
// and for the implicit corrector inside transient integration.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/diag"
	"repro/internal/linalg"
	"repro/internal/linalg/sparse"
)

// Options tunes the Newton iteration. Zero-valued fields are defaulted
// *independently* (see DefaultOptions for the values): callers may set just
// the fields they care about without losing the rest. NoDamping is the one
// boolean, oriented so the zero value selects the safe default (damping on).
type Options struct {
	MaxIter   int     // maximum iterations (0 → 60)
	AbsTol    float64 // residual ∞-norm tolerance (0 → 1e-9)
	RelTol    float64 // step-size relative tolerance (0 → 1e-9)
	NoDamping bool    // disable line-search damping (default: damped)
	MaxStep   float64 // per-iteration ∞-norm clamp on Δx (0 → 2.0; negative → unlimited)
}

// DefaultOptions returns the standard solver settings — what a zero Options
// resolves to.
func DefaultOptions() Options {
	return Options{MaxIter: 60, AbsTol: 1e-9, RelTol: 1e-9, MaxStep: 2.0}
}

// withDefaults resolves zero fields to their defaults, each independently.
// (Historically a zero MaxIter replaced the *entire* Options with
// DefaultOptions(), silently discarding caller-set tolerances and clamps —
// DCSolve callers tuning only AbsTol were bitten by exactly that.)
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MaxIter == 0 {
		o.MaxIter = d.MaxIter
	}
	if o.AbsTol == 0 {
		o.AbsTol = d.AbsTol
	}
	if o.RelTol == 0 {
		o.RelTol = d.RelTol
	}
	if o.MaxStep == 0 {
		o.MaxStep = d.MaxStep
	}
	return o
}

// Func evaluates residual f(x) and, when j is non-nil, the Jacobian df/dx.
type Func func(x linalg.Vec, f linalg.Vec, j *linalg.Mat)

// SparseFunc evaluates residual f(x) and, when sj is non-nil, stamps the
// Jacobian df/dx into sj's value array (sj lives on the pattern the solve
// was provisioned with). The sparse analogue of Func.
type SparseFunc func(x linalg.Vec, f linalg.Vec, sj *sparse.CSC)

// Stats reports what a Newton solve did.
type Stats struct {
	Iterations int
	Residual   float64
	Converged  bool
}

// ErrNoConvergence is returned when the iteration stalls.
var ErrNoConvergence = errors.New("solver: Newton iteration did not converge")

// Scratch holds every buffer a Newton solve needs — iterate, residual,
// Jacobian, line-search trials, step, and a pinned LU factorization — so a
// warm solve allocates nothing. One Scratch serves one goroutine; give each
// worker its own (they are cheap, and NewScratch is the only allocation
// site). A nil *Scratch passed to SolveWith/DCSolveWith allocates a private
// one, which is exactly the old SolveCtx behavior.
//
// The dense (j/lu) and sparse (sj/slu) halves are provisioned independently:
// a scratch used only through the sparse entry points never allocates the
// n×n dense Jacobian, and vice versa.
type Scratch struct {
	x, f, xTry, fTry, dx linalg.Vec
	j                    *linalg.Mat
	lu                   linalg.LU
	sj                   *sparse.CSC
	slu                  sparse.LU
	dsys                 denseSys  // pre-placed adapters so solveCore's
	ssys                 sparseSys // interface value never heap-allocates
	pinned, reported     int64     // bytes pinned / bytes already counted on metrics
}

// NewScratch returns a Scratch sized for n unknowns (dense backend).
func NewScratch(n int) *Scratch {
	s := &Scratch{}
	s.ensure(n)
	return s
}

// NewSparseScratch returns a Scratch provisioned for the sparse backend on
// the given pattern; the dense n×n Jacobian is never allocated.
func NewSparseScratch(pat *sparse.Pattern) *Scratch {
	s := &Scratch{}
	s.ensureSparse(pat)
	return s
}

// ensureVecs (re)sizes the backend-independent vector buffers.
func (s *Scratch) ensureVecs(n int) {
	if len(s.x) == n {
		return
	}
	s.x = linalg.NewVec(n)
	s.f = linalg.NewVec(n)
	s.xTry = linalg.NewVec(n)
	s.fTry = linalg.NewVec(n)
	s.dx = linalg.NewVec(n)
	s.pinned += int64(8 * 5 * n)
}

// ensure (re)sizes the dense-backend buffers for n unknowns; a warm
// same-size call is free.
func (s *Scratch) ensure(n int) {
	s.ensureVecs(n)
	if s.j != nil && s.j.Rows == n {
		return
	}
	s.j = linalg.NewMat(n, n)
	s.pinned += int64(8 * (n*n + 2*n*n)) // Jacobian + LU factors (once factorized)
}

// ensureSparse (re)binds the sparse-backend buffers to the pattern; a warm
// same-pattern call is free. Pattern identity is pointer identity — the
// circuit layer shares one *Pattern per topology.
func (s *Scratch) ensureSparse(pat *sparse.Pattern) {
	s.ensureVecs(pat.N)
	if s.sj != nil && s.sj.P == pat {
		return
	}
	s.sj = sparse.NewCSC(pat)
	s.pinned += int64(8 * pat.NNZ())
}

// countPinned reports not-yet-counted pinned bytes on m (once per scratch).
func (s *Scratch) countPinned(m *diag.Metrics) {
	if m == nil || s.pinned == s.reported {
		return
	}
	m.Add(diag.ScratchBytesPinned, s.pinned-s.reported)
	s.reported = s.pinned
}

// Solve runs damped Newton–Raphson from x0 and returns the solution.
func Solve(fn Func, x0 linalg.Vec, opt Options) (linalg.Vec, Stats, error) {
	return SolveCtx(context.Background(), fn, x0, opt)
}

// SolveCtx is Solve with diagnostics: when ctx carries a *diag.Metrics, the
// solve counts its iterations, line-search backtracks and LU work there.
func SolveCtx(ctx context.Context, fn Func, x0 linalg.Vec, opt Options) (linalg.Vec, Stats, error) {
	return SolveWith(ctx, fn, x0, opt, nil)
}

// SolveWith is SolveCtx running entirely inside sc: a warm scratch makes the
// steady-state solve allocation-free. The returned vector ALIASES sc's
// iterate buffer — it is valid until the next solve through the same
// scratch; clone it to retain. A nil sc allocates a private scratch (making
// the returned vector caller-owned, as SolveCtx always was).
//
// The line search evaluates trial points with a nil Jacobian (residual
// only); once a step is accepted, f and J are re-evaluated together at the
// accepted point, so the next factorization always sees the Jacobian of the
// accepted state — never that of a rejected backtracking trial.
func SolveWith(ctx context.Context, fn Func, x0 linalg.Vec, opt Options, sc *Scratch) (linalg.Vec, Stats, error) {
	if sc == nil {
		sc = NewScratch(len(x0))
	} else {
		sc.ensure(len(x0))
	}
	sc.dsys = denseSys{fn: fn, sc: sc}
	return solveCore(ctx, &sc.dsys, x0, opt, sc)
}

// SolveSparseWith is SolveWith on the sparse backend: the Jacobian is
// stamped into CSC storage on pat and the Newton correction is solved
// against a KLU-style factorization whose symbolic analysis is computed once
// per pattern and reused across every subsequent iteration and solve through
// the same scratch. Aliasing and ownership rules match SolveWith exactly
// (the returned vector aliases sc; nil sc allocates a private one).
func SolveSparseWith(ctx context.Context, fn SparseFunc, pat *sparse.Pattern, x0 linalg.Vec, opt Options, sc *Scratch) (linalg.Vec, Stats, error) {
	if sc == nil {
		sc = NewSparseScratch(pat)
	} else {
		sc.ensureSparse(pat)
	}
	sc.ssys = sparseSys{fn: fn, sc: sc}
	return solveCore(ctx, &sc.ssys, x0, opt, sc)
}

// newtonSys abstracts the backend-specific pieces of a Newton iteration —
// how the residual/Jacobian are evaluated and how the linear correction is
// factorized and solved — so solveCore runs the one damping/convergence
// state machine for both the dense and the sparse backend. Implementations
// live inside Scratch (dsys/ssys) so the interface value never allocates.
type newtonSys interface {
	evalF(x, f linalg.Vec)           // residual only (line-search trials)
	evalFJ(x, f linalg.Vec)          // residual + Jacobian into backend storage
	factorize(m *diag.Metrics) error // factorize the stamped Jacobian
	solve(dst, rhs linalg.Vec)       // dst = J⁻¹·rhs against the factorization
}

// denseSys adapts a Func plus the scratch's dense Jacobian/LU to newtonSys.
type denseSys struct {
	fn Func
	sc *Scratch
}

func (d *denseSys) evalF(x, f linalg.Vec)  { d.fn(x, f, nil) }
func (d *denseSys) evalFJ(x, f linalg.Vec) { d.fn(x, f, d.sc.j) }
func (d *denseSys) factorize(m *diag.Metrics) error {
	err := d.sc.lu.FactorizeInto(d.sc.j)
	m.Inc(diag.LUFactorizations)
	if d.sc.lu.ReusedBuffers() {
		m.Inc(diag.LUFactorizationsReused)
	}
	return err
}
func (d *denseSys) solve(dst, rhs linalg.Vec) { d.sc.lu.SolveInto(dst, rhs) }

// sparseSys adapts a SparseFunc plus the scratch's CSC Jacobian and
// KLU-style factorization to newtonSys.
type sparseSys struct {
	fn SparseFunc
	sc *Scratch
}

func (s *sparseSys) evalF(x, f linalg.Vec)  { s.fn(x, f, nil) }
func (s *sparseSys) evalFJ(x, f linalg.Vec) { s.fn(x, f, s.sc.sj) }
func (s *sparseSys) factorize(m *diag.Metrics) error {
	err := s.sc.slu.FactorizeInto(s.sc.sj)
	if s.sc.slu.ReusedSymbolic() {
		m.Inc(diag.SparseRefactors)
	} else {
		m.Inc(diag.SparseFactorizations)
		m.Add(diag.SparseFillIns, int64(s.sc.slu.FillIn()))
	}
	return err
}
func (s *sparseSys) solve(dst, rhs linalg.Vec) { s.sc.slu.SolveInto(dst, rhs) }

// solveCore is the backend-independent damped Newton state machine. Its
// arithmetic is exactly the historical dense loop — the dense path through
// SolveWith is bit-identical to PR 5.
func solveCore(ctx context.Context, sys newtonSys, x0 linalg.Vec, opt Options, sc *Scratch) (linalg.Vec, Stats, error) {
	m := diag.FromContext(ctx)
	opt = opt.withDefaults()
	m.Inc(diag.NewtonSolves)
	sc.countPinned(m)
	x, f := sc.x, sc.f
	xTry, fTry, dx := sc.xTry, sc.fTry, sc.dx
	copy(x, x0) // x0 may alias sc.x (continuation chains); copy is then a no-op

	sys.evalFJ(x, f)
	res := f.NormInf()
	st := Stats{Residual: res}
	// NormInf cannot flag NaN (NaN loses every comparison, reading as 0 —
	// i.e. "converged"), so scan the entries: a non-finite initial residual
	// means the seed is outside the model's domain. Factorizing the matching
	// garbage Jacobian would surface as a baffling ErrSingular — or worse,
	// an all-NaN residual would silently pass the convergence test; fail
	// fast with the honest diagnosis instead.
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return x, st, fmt.Errorf("%w: initial residual is not finite (f[%d] = %g)", ErrNoConvergence, i, v)
		}
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		if res <= opt.AbsTol {
			st.Converged = true
			st.Iterations = iter
			st.Residual = res
			return x, st, nil
		}
		if err := sys.factorize(m); err != nil {
			return x, st, fmt.Errorf("solver: singular Jacobian at iteration %d: %w", iter, err)
		}
		sys.solve(dx, f)
		m.Inc(diag.LUSolves)
		dx.Scale(-1)
		if opt.MaxStep > 0 {
			if mx := dx.NormInf(); mx > opt.MaxStep {
				dx.Scale(opt.MaxStep / mx)
			}
		}
		// Line search: halve the step until the residual decreases (or accept
		// a full step when damping is off). Trials are residual-only — a
		// rejected candidate costs an f evaluation, not a Jacobian assembly.
		lambda := 1.0
		accepted := false
		for ls := 0; ls < 12; ls++ {
			for i := range xTry {
				xTry[i] = x[i] + lambda*dx[i]
			}
			sys.evalF(xTry, fTry)
			newRes := fTry.NormInf()
			if opt.NoDamping || newRes < res || newRes <= opt.AbsTol || math.IsNaN(res) {
				if math.IsNaN(newRes) || math.IsInf(newRes, 0) {
					lambda /= 2
					m.Inc(diag.NewtonBacktracks)
					continue
				}
				x.CopyFrom(xTry)
				f.CopyFrom(fTry)
				res = newRes
				accepted = true
				break
			}
			lambda /= 2
			m.Inc(diag.NewtonBacktracks)
		}
		if !accepted {
			// Residual would not decrease: accept the tiny step anyway; some
			// strongly nonlinear corners need to pass through a ridge.
			x.CopyFrom(xTry)
			f.CopyFrom(fTry)
			res = fTry.NormInf()
		}
		st.Iterations = iter + 1
		m.Inc(diag.NewtonIterations)
		// Step-based convergence: a vanishing Newton step with finite
		// residual indicates stagnation at machine precision.
		if lambda*dx.NormInf() <= opt.RelTol*(1+x.NormInf()) && res <= 100*opt.AbsTol {
			st.Converged = true
			st.Residual = res
			return x, st, nil
		}
		if res > opt.AbsTol {
			// Refresh f and J together at the ACCEPTED point. Historically the
			// next factorization used whatever Jacobian the last line-search
			// trial left behind — the Jacobian of a rejected candidate when
			// backtracking fired — which was both slower to converge and
			// subtly wrong.
			sys.evalFJ(x, f)
		}
	}
	st.Residual = res
	if res <= 10*opt.AbsTol { // close enough for continuation purposes
		st.Converged = true
		return x, st, nil
	}
	return x, st, fmt.Errorf("%w (residual %.3g after %d iterations)", ErrNoConvergence, res, st.Iterations)
}

// ScaledFunc evaluates residual/Jacobian under continuation scaling
// (gminScale multiplies the stabilizing shunt conductances, srcScale
// multiplies all independent sources).
type ScaledFunc func(x linalg.Vec, f linalg.Vec, j *linalg.Mat, gminScale, srcScale float64)

// DCSolve finds a DC solution of fn using plain Newton first, then gmin
// stepping, then source stepping — the standard SPICE escalation ladder.
// Partial Options are safe: zero fields are defaulted independently.
func DCSolve(fn ScaledFunc, x0 linalg.Vec, opt Options) (linalg.Vec, error) {
	return DCSolveCtx(context.Background(), fn, x0, opt)
}

// DCSolveCtx is DCSolve with cost diagnostics carried by ctx.
func DCSolveCtx(ctx context.Context, fn ScaledFunc, x0 linalg.Vec, opt Options) (linalg.Vec, error) {
	return DCSolveWith(ctx, fn, x0, opt, nil)
}

// DCSolveWith is DCSolveCtx with every Newton stage of the escalation ladder
// running through one reusable scratch. Like SolveWith, the returned vector
// aliases sc when a scratch is supplied; a nil sc allocates a private one.
func DCSolveWith(ctx context.Context, fn ScaledFunc, x0 linalg.Vec, opt Options, sc *Scratch) (linalg.Vec, error) {
	if sc == nil {
		sc = NewScratch(len(x0))
	}
	return dcLadder(x0, func(g, s float64, seed linalg.Vec) (linalg.Vec, error) {
		x, _, err := SolveWith(ctx, func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) {
			fn(x, f, j, g, s)
		}, seed, opt, sc)
		return x, err
	})
}

// ScaledSparseFunc is ScaledFunc on the sparse backend.
type ScaledSparseFunc func(x linalg.Vec, f linalg.Vec, sj *sparse.CSC, gminScale, srcScale float64)

// DCSolveSparseWith is DCSolveWith on the sparse backend: the same SPICE
// escalation ladder (plain Newton → gmin stepping → source stepping), every
// stage stamping into CSC storage on pat and reusing one symbolic
// factorization across the whole continuation chain.
func DCSolveSparseWith(ctx context.Context, fn ScaledSparseFunc, pat *sparse.Pattern, x0 linalg.Vec, opt Options, sc *Scratch) (linalg.Vec, error) {
	if sc == nil {
		sc = NewSparseScratch(pat)
	}
	return dcLadder(x0, func(g, s float64, seed linalg.Vec) (linalg.Vec, error) {
		x, _, err := SolveSparseWith(ctx, func(x linalg.Vec, f linalg.Vec, sj *sparse.CSC) {
			fn(x, f, sj, g, s)
		}, pat, seed, opt, sc)
		return x, err
	})
}

// dcLadder runs the standard SPICE escalation sequence — plain Newton, then
// gmin stepping with geometrically relaxing shunts, then source ramping —
// through a backend-supplied single-stage solve.
func dcLadder(x0 linalg.Vec, step func(g, s float64, seed linalg.Vec) (linalg.Vec, error)) (linalg.Vec, error) {
	// x0 may alias the scratch iterate from a previous solve; the
	// continuation restarts below need the pristine seed after the scratch
	// has been overwritten.
	orig := x0.Clone()
	if x, err := step(1, 1, orig); err == nil {
		return x, nil
	}
	// Gmin stepping: start with heavy shunts and relax geometrically.
	x := orig
	ok := true
	for _, g := range []float64{1e9, 1e7, 1e5, 1e3, 1e2, 10, 1} {
		var err error
		x, err = step(g, 1, x)
		if err != nil {
			ok = false
			break
		}
	}
	if ok {
		return x, nil
	}
	// Source stepping: ramp sources from 0.
	x = orig
	for _, s := range []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0} {
		var err error
		x, err = step(1, s, x)
		if err != nil {
			return nil, fmt.Errorf("solver: DC continuation failed at source scale %g: %w", s, err)
		}
	}
	return x, nil
}
