// Package solver implements the damped Newton–Raphson iteration and the
// gmin / source-stepping continuation schemes used for DC operating points
// and for the implicit corrector inside transient integration.
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/diag"
	"repro/internal/linalg"
)

// Options tunes the Newton iteration. Zero-valued fields are defaulted
// *independently* (see DefaultOptions for the values): callers may set just
// the fields they care about without losing the rest. NoDamping is the one
// boolean, oriented so the zero value selects the safe default (damping on).
type Options struct {
	MaxIter   int     // maximum iterations (0 → 60)
	AbsTol    float64 // residual ∞-norm tolerance (0 → 1e-9)
	RelTol    float64 // step-size relative tolerance (0 → 1e-9)
	NoDamping bool    // disable line-search damping (default: damped)
	MaxStep   float64 // per-iteration ∞-norm clamp on Δx (0 → 2.0; negative → unlimited)
}

// DefaultOptions returns the standard solver settings — what a zero Options
// resolves to.
func DefaultOptions() Options {
	return Options{MaxIter: 60, AbsTol: 1e-9, RelTol: 1e-9, MaxStep: 2.0}
}

// withDefaults resolves zero fields to their defaults, each independently.
// (Historically a zero MaxIter replaced the *entire* Options with
// DefaultOptions(), silently discarding caller-set tolerances and clamps —
// DCSolve callers tuning only AbsTol were bitten by exactly that.)
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MaxIter == 0 {
		o.MaxIter = d.MaxIter
	}
	if o.AbsTol == 0 {
		o.AbsTol = d.AbsTol
	}
	if o.RelTol == 0 {
		o.RelTol = d.RelTol
	}
	if o.MaxStep == 0 {
		o.MaxStep = d.MaxStep
	}
	return o
}

// Func evaluates residual f(x) and, when j is non-nil, the Jacobian df/dx.
type Func func(x linalg.Vec, f linalg.Vec, j *linalg.Mat)

// Stats reports what a Newton solve did.
type Stats struct {
	Iterations int
	Residual   float64
	Converged  bool
}

// ErrNoConvergence is returned when the iteration stalls.
var ErrNoConvergence = errors.New("solver: Newton iteration did not converge")

// Scratch holds every buffer a Newton solve needs — iterate, residual,
// Jacobian, line-search trials, step, and a pinned LU factorization — so a
// warm solve allocates nothing. One Scratch serves one goroutine; give each
// worker its own (they are cheap, and NewScratch is the only allocation
// site). A nil *Scratch passed to SolveWith/DCSolveWith allocates a private
// one, which is exactly the old SolveCtx behavior.
type Scratch struct {
	x, f, xTry, fTry, dx linalg.Vec
	j                    *linalg.Mat
	lu                   linalg.LU
	pinned, reported     int64 // bytes pinned / bytes already counted on metrics
}

// NewScratch returns a Scratch sized for n unknowns.
func NewScratch(n int) *Scratch {
	s := &Scratch{}
	s.ensure(n)
	return s
}

// ensure (re)sizes the buffers for n unknowns; a warm same-size call is free.
func (s *Scratch) ensure(n int) {
	if s.j != nil && s.j.Rows == n && len(s.x) == n {
		return
	}
	s.x = linalg.NewVec(n)
	s.f = linalg.NewVec(n)
	s.xTry = linalg.NewVec(n)
	s.fTry = linalg.NewVec(n)
	s.dx = linalg.NewVec(n)
	s.j = linalg.NewMat(n, n)
	s.pinned = int64(8 * (5*n + n*n + 2*n*n)) // vectors + Jacobian + LU factors (once factorized)
}

// countPinned reports not-yet-counted pinned bytes on m (once per scratch).
func (s *Scratch) countPinned(m *diag.Metrics) {
	if m == nil || s.pinned == s.reported {
		return
	}
	m.Add(diag.ScratchBytesPinned, s.pinned-s.reported)
	s.reported = s.pinned
}

// Solve runs damped Newton–Raphson from x0 and returns the solution.
func Solve(fn Func, x0 linalg.Vec, opt Options) (linalg.Vec, Stats, error) {
	return SolveCtx(context.Background(), fn, x0, opt)
}

// SolveCtx is Solve with diagnostics: when ctx carries a *diag.Metrics, the
// solve counts its iterations, line-search backtracks and LU work there.
func SolveCtx(ctx context.Context, fn Func, x0 linalg.Vec, opt Options) (linalg.Vec, Stats, error) {
	return SolveWith(ctx, fn, x0, opt, nil)
}

// SolveWith is SolveCtx running entirely inside sc: a warm scratch makes the
// steady-state solve allocation-free. The returned vector ALIASES sc's
// iterate buffer — it is valid until the next solve through the same
// scratch; clone it to retain. A nil sc allocates a private scratch (making
// the returned vector caller-owned, as SolveCtx always was).
//
// The line search evaluates trial points with a nil Jacobian (residual
// only); once a step is accepted, f and J are re-evaluated together at the
// accepted point, so the next factorization always sees the Jacobian of the
// accepted state — never that of a rejected backtracking trial.
func SolveWith(ctx context.Context, fn Func, x0 linalg.Vec, opt Options, sc *Scratch) (linalg.Vec, Stats, error) {
	m := diag.FromContext(ctx)
	n := len(x0)
	opt = opt.withDefaults()
	m.Inc(diag.NewtonSolves)
	if sc == nil {
		sc = NewScratch(n)
	} else {
		sc.ensure(n)
	}
	sc.countPinned(m)
	x, f, j := sc.x, sc.f, sc.j
	xTry, fTry, dx := sc.xTry, sc.fTry, sc.dx
	copy(x, x0) // x0 may alias sc.x (continuation chains); copy is then a no-op

	fn(x, f, j)
	res := f.NormInf()
	st := Stats{Residual: res}
	// NormInf cannot flag NaN (NaN loses every comparison, reading as 0 —
	// i.e. "converged"), so scan the entries: a non-finite initial residual
	// means the seed is outside the model's domain. Factorizing the matching
	// garbage Jacobian would surface as a baffling ErrSingular — or worse,
	// an all-NaN residual would silently pass the convergence test; fail
	// fast with the honest diagnosis instead.
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return x, st, fmt.Errorf("%w: initial residual is not finite (f[%d] = %g)", ErrNoConvergence, i, v)
		}
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		if res <= opt.AbsTol {
			st.Converged = true
			st.Iterations = iter
			st.Residual = res
			return x, st, nil
		}
		err := sc.lu.FactorizeInto(j)
		m.Inc(diag.LUFactorizations)
		if sc.lu.ReusedBuffers() {
			m.Inc(diag.LUFactorizationsReused)
		}
		if err != nil {
			return x, st, fmt.Errorf("solver: singular Jacobian at iteration %d: %w", iter, err)
		}
		sc.lu.SolveInto(dx, f)
		m.Inc(diag.LUSolves)
		dx.Scale(-1)
		if opt.MaxStep > 0 {
			if mx := dx.NormInf(); mx > opt.MaxStep {
				dx.Scale(opt.MaxStep / mx)
			}
		}
		// Line search: halve the step until the residual decreases (or accept
		// a full step when damping is off). Trials are residual-only — a
		// rejected candidate costs an f evaluation, not a Jacobian assembly.
		lambda := 1.0
		accepted := false
		for ls := 0; ls < 12; ls++ {
			for i := range xTry {
				xTry[i] = x[i] + lambda*dx[i]
			}
			fn(xTry, fTry, nil)
			newRes := fTry.NormInf()
			if opt.NoDamping || newRes < res || newRes <= opt.AbsTol || math.IsNaN(res) {
				if math.IsNaN(newRes) || math.IsInf(newRes, 0) {
					lambda /= 2
					m.Inc(diag.NewtonBacktracks)
					continue
				}
				x.CopyFrom(xTry)
				f.CopyFrom(fTry)
				res = newRes
				accepted = true
				break
			}
			lambda /= 2
			m.Inc(diag.NewtonBacktracks)
		}
		if !accepted {
			// Residual would not decrease: accept the tiny step anyway; some
			// strongly nonlinear corners need to pass through a ridge.
			x.CopyFrom(xTry)
			f.CopyFrom(fTry)
			res = fTry.NormInf()
		}
		st.Iterations = iter + 1
		m.Inc(diag.NewtonIterations)
		// Step-based convergence: a vanishing Newton step with finite
		// residual indicates stagnation at machine precision.
		if lambda*dx.NormInf() <= opt.RelTol*(1+x.NormInf()) && res <= 100*opt.AbsTol {
			st.Converged = true
			st.Residual = res
			return x, st, nil
		}
		if res > opt.AbsTol {
			// Refresh f and J together at the ACCEPTED point. Historically the
			// next factorization used whatever Jacobian the last line-search
			// trial left behind — the Jacobian of a rejected candidate when
			// backtracking fired — which was both slower to converge and
			// subtly wrong.
			fn(x, f, j)
		}
	}
	st.Residual = res
	if res <= 10*opt.AbsTol { // close enough for continuation purposes
		st.Converged = true
		return x, st, nil
	}
	return x, st, fmt.Errorf("%w (residual %.3g after %d iterations)", ErrNoConvergence, res, st.Iterations)
}

// ScaledFunc evaluates residual/Jacobian under continuation scaling
// (gminScale multiplies the stabilizing shunt conductances, srcScale
// multiplies all independent sources).
type ScaledFunc func(x linalg.Vec, f linalg.Vec, j *linalg.Mat, gminScale, srcScale float64)

// DCSolve finds a DC solution of fn using plain Newton first, then gmin
// stepping, then source stepping — the standard SPICE escalation ladder.
// Partial Options are safe: zero fields are defaulted independently.
func DCSolve(fn ScaledFunc, x0 linalg.Vec, opt Options) (linalg.Vec, error) {
	return DCSolveCtx(context.Background(), fn, x0, opt)
}

// DCSolveCtx is DCSolve with cost diagnostics carried by ctx.
func DCSolveCtx(ctx context.Context, fn ScaledFunc, x0 linalg.Vec, opt Options) (linalg.Vec, error) {
	return DCSolveWith(ctx, fn, x0, opt, nil)
}

// DCSolveWith is DCSolveCtx with every Newton stage of the escalation ladder
// running through one reusable scratch. Like SolveWith, the returned vector
// aliases sc when a scratch is supplied; a nil sc allocates a private one.
func DCSolveWith(ctx context.Context, fn ScaledFunc, x0 linalg.Vec, opt Options, sc *Scratch) (linalg.Vec, error) {
	plain := func(g, s float64) Func {
		return func(x linalg.Vec, f linalg.Vec, j *linalg.Mat) { fn(x, f, j, g, s) }
	}
	if sc == nil {
		sc = NewScratch(len(x0))
	}
	// x0 may alias sc.x from a previous solve; the continuation restarts below
	// need the pristine seed after the scratch has been overwritten.
	orig := x0.Clone()
	if x, _, err := SolveWith(ctx, plain(1, 1), orig, opt, sc); err == nil {
		return x, nil
	}
	// Gmin stepping: start with heavy shunts and relax geometrically.
	x := orig
	ok := true
	for _, g := range []float64{1e9, 1e7, 1e5, 1e3, 1e2, 10, 1} {
		var err error
		x, _, err = SolveWith(ctx, plain(g, 1), x, opt, sc)
		if err != nil {
			ok = false
			break
		}
	}
	if ok {
		return x, nil
	}
	// Source stepping: ramp sources from 0.
	x = orig
	for _, s := range []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0} {
		var err error
		x, _, err = SolveWith(ctx, plain(1, s), x, opt, sc)
		if err != nil {
			return nil, fmt.Errorf("solver: DC continuation failed at source scale %g: %w", s, err)
		}
	}
	return x, nil
}
