// Command phlogon-sim runs SPICE-level transient analysis on a netlist deck
// and writes node waveforms as CSV (stdout or file).
//
// Usage:
//
//	phlogon-sim -deck ring.cir -stop 5m -step 0.2u [-method trap|be]
//	            [-adaptive] [-nodes n1,n2] [-o out.csv] [-ic n1=2.7,n2=0.3]
//	            [-metrics|-metrics-json] [-cpuprofile f] [-memprofile f]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/diag"
	"repro/internal/linalg"
	"repro/internal/netlist"
	"repro/internal/solver"
	"repro/internal/transient"
	"repro/internal/wave"
)

func main() {
	deck := flag.String("deck", "", "netlist file (required)")
	stop := flag.String("stop", "1m", "end time (SPICE units)")
	step := flag.String("step", "1u", "time step (SPICE units)")
	method := flag.String("method", "trap", "integration method: trap or be")
	adaptive := flag.Bool("adaptive", false, "LTE-adaptive stepping")
	nodes := flag.String("nodes", "", "comma-separated node names to record (default: all)")
	out := flag.String("o", "", "output CSV file (default stdout)")
	ic := flag.String("ic", "", "initial conditions node=V,node=V (default: DC operating point)")
	record := flag.Int("record", 1, "record every Nth accepted step")
	df = diag.AddFlags(flag.CommandLine)
	flag.Parse()

	if *deck == "" {
		fmt.Fprintln(os.Stderr, "phlogon-sim: -deck is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, err := df.Start(context.Background())
	if err != nil {
		fatal(err)
	}
	defer df.Stop()
	src, err := os.ReadFile(*deck)
	if err != nil {
		fatal(err)
	}
	ckt, err := netlist.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	sys, err := ckt.Assemble()
	if err != nil {
		fatal(err)
	}
	t1, err := netlist.ParseValue(*stop)
	if err != nil {
		fatal(fmt.Errorf("bad -stop: %w", err))
	}
	h, err := netlist.ParseValue(*step)
	if err != nil {
		fatal(fmt.Errorf("bad -step: %w", err))
	}

	// Initial state.
	var x0 linalg.Vec
	if *ic == "" {
		x0, err = solver.DCOperatingPointCtx(ctx, sys, nil, 0)
		if err != nil {
			fatal(fmt.Errorf("DC operating point: %w (try -ic)", err))
		}
	} else {
		x0 = linalg.NewVec(sys.N)
		for _, kv := range strings.Split(*ic, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad -ic entry %q", kv))
			}
			idx := ckt.NodeIndex(strings.TrimSpace(parts[0]))
			if idx < 0 {
				fatal(fmt.Errorf("-ic: unknown node %q", parts[0]))
			}
			v, err := netlist.ParseValue(parts[1])
			if err != nil {
				fatal(err)
			}
			x0[idx] = v
		}
	}

	m := transient.Trap
	if strings.EqualFold(*method, "be") {
		m = transient.BE
	}
	res, err := transient.RunCtx(ctx, sys, x0, 0, t1, transient.Options{
		Method: m, Step: h, Adaptive: *adaptive, Record: *record,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "phlogon-sim: %s, %d steps (%d rejected), %d Newton iterations\n",
		sys.Describe(), res.Steps, res.Rejected, res.NewtonIters)

	// Select output nodes.
	var names []string
	if *nodes == "" {
		for i := 0; i < sys.N; i++ {
			names = append(names, ckt.NodeName(i))
		}
	} else {
		names = strings.Split(*nodes, ",")
	}
	cols := map[string][]float64{}
	for _, n := range names {
		idx := ckt.NodeIndex(strings.TrimSpace(n))
		if idx < 0 {
			fatal(fmt.Errorf("unknown node %q", n))
		}
		cols[n] = res.Node(idx)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := wave.MultiCSV(w, res.T, cols, names); err != nil {
		fatal(err)
	}
}

// df is package-level so fatal can flush profiles/metrics before exiting.
var df *diag.Flags

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phlogon-sim:", err)
	if df != nil {
		df.Stop()
	}
	os.Exit(1)
}
