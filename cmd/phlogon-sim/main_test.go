package main_test

import (
	"path/filepath"
	"testing"

	"repro/internal/cmdtest"
)

func TestMissingDeckExit2(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-sim")
	for _, args := range [][]string{nil, {"-stop", "1m"}} {
		res := cmdtest.Run(t, bin, "", args...)
		if res.ExitCode != 2 {
			t.Errorf("args %v: exit %d, want 2\nstderr: %s", args, res.ExitCode, res.Stderr)
		}
	}
}

func TestUnreadableDeckExit1(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-sim")
	res := cmdtest.Run(t, bin, "", "-deck", "does-not-exist.cir")
	if res.ExitCode != 1 {
		t.Errorf("exit %d, want 1\nstderr: %s", res.ExitCode, res.Stderr)
	}
}

func TestTransientToCSV(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-sim")
	deck := cmdtest.WriteRingDeck(t)
	dir := filepath.Dir(deck)
	res := cmdtest.Run(t, bin, dir, "-deck", deck,
		"-stop", "0.1m", "-step", "1u",
		"-ic", "n1=2.7,n2=0.3,n3=1.5", "-o", "sim.csv")
	if res.ExitCode != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", res.ExitCode, res.Stdout, res.Stderr)
	}
	cmdtest.MustContain(t, res.Stderr, "steps", "Newton iterations")
	out := filepath.Join(dir, "sim.csv")
	cmdtest.MustExist(t, out)
	cmdtest.MustContain(t, cmdtest.ReadFile(t, out), "t,", "n1")
}
