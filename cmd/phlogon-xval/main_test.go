package main_test

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/cmdtest"
)

func TestExtraArgsExit2(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-xval")
	res := cmdtest.Run(t, bin, "", "unexpected")
	if res.ExitCode != 2 {
		t.Errorf("exit %d, want 2\nstderr: %s", res.ExitCode, res.Stderr)
	}
}

func TestListEnumeratesLedger(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-xval")
	res := cmdtest.Run(t, bin, "", "-list")
	if res.ExitCode != 0 {
		t.Fatalf("exit %d\nstderr: %s", res.ExitCode, res.Stderr)
	}
	cmdtest.MustContain(t, res.Stdout,
		"pss/shooting-vs-hb", "ppv/adjoint-vs-hb",
		"gae/lock-threshold", "fsm/adder-101")
}

func TestFastFamilyRunWithJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pss conformance case (shooting + HB refinement)")
	}
	bin := cmdtest.Build(t, "./cmd/phlogon-xval")
	report := filepath.Join(t.TempDir(), "report.json")
	res := cmdtest.Run(t, bin, "", "-fast", "-families", "pss", "-json", report)
	if res.ExitCode != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", res.ExitCode, res.Stdout, res.Stderr)
	}
	cmdtest.MustContain(t, res.Stdout, "PASS")
	var rep struct {
		Pass  bool `json:"pass"`
		Cases []struct {
			ID string `json:"id"`
		} `json:"cases"`
	}
	if err := json.Unmarshal([]byte(cmdtest.ReadFile(t, report)), &rep); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if !rep.Pass || len(rep.Cases) == 0 {
		t.Errorf("report pass=%v cases=%d, want passing non-empty report", rep.Pass, len(rep.Cases))
	}
}
