// Command phlogon-xval runs the cross-method conformance ledger
// (internal/xval): shooting↔HB, adjoint↔PPV-HB, GAE↔transient and
// macromodel-FSM↔transistor-level method pairs, plus the golden-trace
// regression baselines. It exits non-zero when any ledger entry drifts
// outside its declared tolerance, making it usable as a CI gate
// (`make xval` wires it into `make check`).
//
// Usage:
//
//	phlogon-xval [-families pss,ppv,gae,fsm] [-fast] [-workers n]
//	             [-json report.json] [-golden dir] [-update] [-list]
//	             [-metrics|-metrics-json] [-cpuprofile f] [-memprofile f]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/diag"
	"repro/internal/xval"
)

func main() {
	os.Exit(run())
}

func run() int {
	families := flag.String("families", "", "comma-separated family filter (pss,ppv,gae,fsm,logic); empty = all")
	fast := flag.Bool("fast", false, "skip the slow SPICE-level cases")
	workers := flag.Int("workers", 0, "case fan-out bound (0 = NumCPU)")
	jsonOut := flag.String("json", "", "write the machine-readable report to this file ('-' = stdout)")
	goldenDir := flag.String("golden", "", "read golden fixtures from this directory instead of the embedded copies")
	update := flag.Bool("update", false, "regenerate golden fixtures under internal/xval/testdata/golden (or -golden dir)")
	list := flag.Bool("list", false, "list the ledger cases and exit")
	df := diag.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "phlogon-xval: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		return 2
	}

	ledger := xval.Ledger()
	if *list {
		for _, c := range ledger {
			speed := "fast"
			if c.Slow {
				speed = "slow"
			}
			fmt.Printf("%-28s %-5s %s\n", c.ID, speed, c.Desc)
		}
		return 0
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, err := df.Start(sigCtx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phlogon-xval: %v\n", err)
		return 1
	}
	defer df.Stop()

	opt := xval.Options{
		FastOnly: *fast,
		Workers:  *workers,
		Ctx:      ctx,
	}
	if *families != "" {
		opt.Families = strings.Split(*families, ",")
	}
	if !*update {
		golden, err := xval.LoadGolden(*goldenDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phlogon-xval: %v\n", err)
			return 1
		}
		opt.Golden = golden
	}

	fx := xval.NewFixtures(*workers)
	rep := xval.Run(ledger, fx, opt)
	fmt.Print(rep.Summary())

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "phlogon-xval: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "phlogon-xval: %v\n", err)
			return 1
		}
	}

	if *update {
		if !rep.Pass {
			fmt.Fprintln(os.Stderr, "phlogon-xval: refusing to update golden from a failing ledger")
			return 1
		}
		if err := xval.UpdateGolden(*goldenDir, rep); err != nil {
			fmt.Fprintf(os.Stderr, "phlogon-xval: %v\n", err)
			return 1
		}
		fmt.Println("golden fixtures updated")
	}

	if !rep.Pass {
		return 1
	}
	return 0
}
