package main_test

import (
	"context"
	"net/http"
	"os"
	"sort"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cmdtest"
	"repro/internal/serve"
)

// TestBenchServe is the load harness behind `make bench-serve` (skipped
// unless PHLOGON_BENCH_SERVE=1): it boots the real binary with a disk
// store, measures cold solve latency, fires hundreds of concurrent mixed
// cold/warm requests, and then proves the warm state survives a full
// process restart by serving from disk without a single Newton iteration.
func TestBenchServe(t *testing.T) {
	if os.Getenv("PHLOGON_BENCH_SERVE") != "1" {
		t.Skip("load harness; run via `make bench-serve` (PHLOGON_BENCH_SERVE=1)")
	}
	storeDir := t.TempDir()
	bin := cmdtest.Build(t, "./cmd/phlogon-serve")
	start := func() (*cmdtest.Proc, *serve.Client) {
		p := cmdtest.Start(t, bin, "",
			"-addr", "127.0.0.1:0", "-store", storeDir,
			"-pss-steps", "1024", "-max-inflight", "4096")
		addr := cmdtest.Addr(t, p.ExpectLine("listening on", 30*time.Second))
		tr := &http.Transport{MaxIdleConns: 1024, MaxIdleConnsPerHost: 1024}
		t.Cleanup(tr.CloseIdleConnections)
		return p, &serve.Client{BaseURL: "http://" + addr, HTTPClient: &http.Client{Transport: tr}}
	}
	proc, c := start()
	ctx := context.Background()

	// The ring family under load: distinct load capacitances, so every spec
	// is its own artifact.
	const seeded = 16
	ringAt := func(i int) serve.RingSpec {
		return serve.RingSpec{CLoad: 4.7e-9 * (1 + 0.01*float64(i))}
	}

	// Phase 1 — cold baseline, measured without contention so the median is
	// the solve cost itself, not scheduler queueing.
	var coldLat []time.Duration
	for i := 0; i < seeded; i++ {
		t0 := time.Now()
		resp, err := c.PSS(ctx, serve.PSSRequest{Ring: ringAt(i)})
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if !resp.Cold {
			t.Fatalf("seed %d unexpectedly warm", i)
		}
		coldLat = append(coldLat, time.Since(t0))
	}

	// Phase 2 — the concurrent mixed load: 500 warm requests over the
	// seeded family plus 20 fresh cold configs, all in flight at once.
	const warmN, coldN = 500, 20
	type outcome struct {
		cold bool
		err  error
	}
	results := make([]outcome, warmN+coldN)
	var wg sync.WaitGroup
	loadStart := time.Now()
	for i := 0; i < warmN+coldN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ring := ringAt(i % seeded)
			if i >= warmN {
				ring = ringAt(seeded + i - warmN) // beyond the seeded family: cold
			}
			resp, err := c.PSS(ctx, serve.PSSRequest{Ring: ring})
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			results[i] = outcome{cold: resp.Cold}
		}(i)
	}
	wg.Wait()
	loadWall := time.Since(loadStart)
	gotWarm, gotCold := 0, 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d failed under load: %v", i, r.err)
		}
		if r.cold {
			gotCold++
		} else {
			gotWarm++
		}
	}
	if gotCold != coldN || gotWarm != warmN {
		t.Fatalf("load classified as %d cold / %d warm, want %d / %d", gotCold, gotWarm, coldN, warmN)
	}
	t.Logf("load: %d requests (%d cold) in %v, zero errors", warmN+coldN, gotCold, loadWall)

	// Bounded memory: after the burst, the heap holds the LRU-bounded cache
	// plus transient request state — not 520 requests' worth of waveforms.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const heapBound = 1 << 28 // 256 MiB, far above steady state, far below a leak
	if m.Mem.HeapAllocBytes > heapBound {
		t.Fatalf("heap_alloc_bytes = %d after load, want < %d", m.Mem.HeapAllocBytes, heapBound)
	}
	if m.Server.RejectedSaturated != 0 {
		t.Fatalf("%d requests were 503'd under load (limit too low for the harness)", m.Server.RejectedSaturated)
	}
	t.Logf("after load: heap %0.1f MiB, engine %d misses / %d hits+%d coalesced, %d disk writes",
		float64(m.Mem.HeapAllocBytes)/(1<<20), m.Engine.Misses,
		m.Engine.Hits, m.Engine.Coalesced, m.Engine.DiskWrites)

	// Phase 3 — warm latency, measured like the cold baseline (sequential,
	// uncontended), so the ratio compares request cost to request cost.
	var warmLat []time.Duration
	for i := 0; i < 100; i++ {
		t0 := time.Now()
		resp, err := c.PSS(ctx, serve.PSSRequest{Ring: ringAt(i % seeded)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cold {
			t.Fatalf("probe %d recomputed a seeded config", i)
		}
		warmLat = append(warmLat, time.Since(t0))
	}
	coldMed, warmMed := median(coldLat), median(warmLat)
	t.Logf("median latency: cold %v, warm %v (%.0fx)", coldMed, warmMed, float64(coldMed)/float64(warmMed))
	if warmMed*10 > coldMed {
		t.Fatalf("warm median %v not 10x better than cold median %v", warmMed, coldMed)
	}

	// Phase 4 — drain and restart on the same store: the first repeat must
	// come from disk, with zero solver work.
	proc.Signal(syscall.SIGTERM)
	proc.ExpectLine("drained", 30*time.Second)
	if res := proc.Wait(30 * time.Second); res.ExitCode != 0 {
		t.Fatalf("first process exit %d\nstderr: %s", res.ExitCode, res.Stderr)
	}

	_, c2 := start()
	t0 := time.Now()
	resp, err := c2.PSS(ctx, serve.PSSRequest{Ring: ringAt(0)})
	if err != nil {
		t.Fatalf("warm-restart request: %v", err)
	}
	restartLat := time.Since(t0)
	m2, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Engine.DiskHits < 1 {
		t.Fatalf("restarted process did not read the disk store: %+v", m2.Engine)
	}
	if iters := m2.Diag.Counters["newton_iterations"]; iters != 0 {
		t.Fatalf("restarted process ran %d Newton iterations, want 0 (disk-served)", iters)
	}
	if resp.F0 <= 0 {
		t.Fatalf("restarted response junk: %+v", resp)
	}
	t.Logf("warm restart: first repeat served from disk in %v (cold median was %v)", restartLat, coldMed)
}

func median(d []time.Duration) time.Duration {
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
