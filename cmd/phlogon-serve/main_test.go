package main_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"syscall"
	"testing"
	"time"

	"repro/internal/cmdtest"
)

// TestSmoke boots the server on an ephemeral port, checks /healthz, and
// shuts it down with SIGTERM — the full lifecycle every deployment relies
// on, without running any analysis.
func TestSmoke(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-serve")
	p := cmdtest.Start(t, bin, "", "-addr", "127.0.0.1:0")
	line := p.ExpectLine("listening on", 30*time.Second)
	addr := cmdtest.Addr(t, line)

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d, body %s", resp.StatusCode, body)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz body %q, want status ok (err %v)", body, err)
	}

	p.Signal(syscall.SIGTERM)
	p.ExpectLine("drained", 30*time.Second)
	res := p.Wait(30 * time.Second)
	if res.ExitCode != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", res.ExitCode, res.Stderr)
	}
}

// TestBadStoreExit1 pins the failure mode for an unusable -store path.
func TestBadStoreExit1(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-serve")
	res := cmdtest.Run(t, bin, "", "-store", "/dev/null/not-a-dir")
	if res.ExitCode != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", res.ExitCode, res.Stderr)
	}
}
