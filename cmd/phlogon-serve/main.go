// Command phlogon-serve exposes the memoizing analysis engine as an HTTP
// JSON service: PSS, PPV extraction, GAE locking sweeps and SPICE-level
// transients over the ring-oscillator vehicles, with admission control,
// per-request deadlines and graceful drain on SIGTERM. With -store, the
// engine gains a disk-backed content-addressed artifact tier so a warm
// cache survives restarts (and one directory can back several replicas).
//
// Usage:
//
//	phlogon-serve [-addr :8080] [-store DIR] [-workers N]
//	              [-capacity-bytes N] [-pss-steps 1024] [-timeout 120s]
//	              [-max-inflight N] [-retry-after 1s] [-drain-timeout 30s]
//	              [-metrics|-metrics-json] [-cpuprofile f] [-memprofile f]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/pss"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	store := flag.String("store", "", "disk artifact store directory (empty: memory-only cache)")
	workers := flag.Int("workers", 0, "engine compute-pool width (0: one per CPU)")
	capacityBytes := flag.Int64("capacity-bytes", 0, "in-memory artifact cache bound (0: default, <0: unbounded)")
	pssSteps := flag.Int("pss-steps", 1024, "PSS steps per period (part of every cache key)")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request analysis deadline")
	maxInFlight := flag.Int("max-inflight", 0, "admission limit (0: 8x engine workers)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 503 responses")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on graceful drain at shutdown")
	df = diag.AddFlags(flag.CommandLine)
	flag.Parse()

	ctx, err := df.Start(context.Background())
	if err != nil {
		fatal(err)
	}
	defer df.Stop()

	opt := engine.Options{
		CapacityBytes: *capacityBytes,
		Workers:       *workers,
		PSS:           pss.Options{StepsPerPeriod: *pssSteps},
	}
	if *store != "" {
		ds, err := engine.OpenDiskStore(*store)
		if err != nil {
			fatal(err)
		}
		opt.Disk = ds
		fmt.Printf("phlogon-serve: disk artifact store at %s\n", ds.Dir())
	}
	eng := engine.New(opt)

	// Under -metrics/-metrics-json the exit report aggregates every
	// request's counters and serve.* spans (metrics stays nil otherwise and
	// the server allocates its own aggregate).
	metrics := diag.FromContext(ctx)
	srv, err := serve.New(serve.Options{
		Engine:         eng,
		RequestTimeout: *timeout,
		MaxInFlight:    *maxInFlight,
		RetryAfter:     *retryAfter,
		Metrics:        metrics,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	// The resolved address is printed (not just the flag) so port 0 is
	// usable: tests and scripts parse this line to find the server.
	fmt.Printf("phlogon-serve: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("phlogon-serve: %s received, draining\n", sig)
		srv.BeginDrain()
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.DrainWait(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "phlogon-serve: drain incomplete: %v\n", err)
		}
		if err := httpSrv.Shutdown(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "phlogon-serve: shutdown: %v\n", err)
		}
		st := eng.Stats()
		fmt.Printf("phlogon-serve: drained (cache: %d hits, %d misses, %d coalesced; disk: %d hits, %d writes)\n",
			st.Hits, st.Misses, st.Coalesced, st.DiskHits, st.DiskWrites)
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

// df is package-level so fatal can flush profiles/metrics before exiting.
var df *diag.Flags

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phlogon-serve:", err)
	if df != nil {
		df.Stop()
	}
	os.Exit(1)
}
