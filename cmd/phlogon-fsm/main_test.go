package main_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

func TestBadFlagExit2(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-fsm")
	res := cmdtest.Run(t, bin, "", "-no-such-flag")
	if res.ExitCode != 2 {
		t.Errorf("exit %d, want 2\nstderr: %s", res.ExitCode, res.Stderr)
	}
}

func TestOneBitAdd(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-fsm")
	res := cmdtest.Run(t, bin, "", "-a", "1", "-b", "1")
	if res.ExitCode != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", res.ExitCode, res.Stdout, res.Stderr)
	}
	cmdtest.MustContain(t, res.Stdout,
		"serial adder on phase macromodels", "result: CORRECT")
}

// TestCompileSubcommand: the generator emits a valid IR document and the
// validating round trip (-in) reproduces it byte for byte.
func TestCompileSubcommand(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-fsm")
	res := cmdtest.Run(t, bin, "", "compile", "-adder", "4")
	if res.ExitCode != 0 {
		t.Fatalf("exit %d\nstderr: %s", res.ExitCode, res.Stderr)
	}
	cmdtest.MustContain(t, res.Stdout, `"name": "adder4"`, `"cout"`, `"kind": "maj"`)

	dir := t.TempDir()
	path := filepath.Join(dir, "adder4.json")
	if err := os.WriteFile(path, []byte(res.Stdout), 0o644); err != nil {
		t.Fatal(err)
	}
	again := cmdtest.Run(t, bin, "", "compile", "-in", path)
	if again.ExitCode != 0 {
		t.Fatalf("round trip exit %d\nstderr: %s", again.ExitCode, again.Stderr)
	}
	if again.Stdout != res.Stdout {
		t.Error("compile -in did not reproduce the generated document")
	}

	// A structurally invalid document must be refused with a diagnostic.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","outputs":["ghost"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	refused := cmdtest.Run(t, bin, "", "compile", "-in", bad)
	if refused.ExitCode == 0 {
		t.Error("invalid netlist accepted")
	}
	cmdtest.MustContain(t, refused.Stderr, "invalid netlist")
}

// TestRunSubcommand compiles generated IR to the macromodel substrate and
// checks the decoded outputs agree with the Boolean evaluator end to end.
func TestRunSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("cold PPV chain skipped in -short")
	}
	bin := cmdtest.Build(t, "./cmd/phlogon-fsm")
	dir := t.TempDir()

	adder := filepath.Join(dir, "adder2.json")
	res := cmdtest.Run(t, bin, "", "compile", "-adder", "2", "-o", adder)
	if res.ExitCode != 0 {
		t.Fatalf("compile exit %d\nstderr: %s", res.ExitCode, res.Stderr)
	}
	run := cmdtest.Run(t, bin, "", "run", "-in", adder, "-word", "1110")
	if run.ExitCode != 0 {
		t.Fatalf("run exit %d\nstdout: %s\nstderr: %s", run.ExitCode, run.Stdout, run.Stderr)
	}
	cmdtest.MustContain(t, run.Stdout, "phase-logic run: adder2", "result: CORRECT")

	sr := filepath.Join(dir, "sr2.json")
	if res := cmdtest.Run(t, bin, "", "compile", "-shiftreg", "2", "-o", sr); res.ExitCode != 0 {
		t.Fatalf("compile exit %d\nstderr: %s", res.ExitCode, res.Stderr)
	}
	stream := cmdtest.Run(t, bin, "", "run", "-in", sr, "-streams", "1011")
	if stream.ExitCode != 0 {
		t.Fatalf("run exit %d\nstdout: %s\nstderr: %s", stream.ExitCode, stream.Stdout, stream.Stderr)
	}
	cmdtest.MustContain(t, stream.Stdout, "phase-logic run: shiftreg2", "result: CORRECT")
	// q0 reproduces the input stream, q1 its one-period delay.
	for _, line := range strings.Split(stream.Stdout, "\n") {
		if strings.HasPrefix(line, "q0") && !strings.Contains(line, "1011") {
			t.Errorf("q0 row: %q", line)
		}
		if strings.HasPrefix(line, "q1") && !strings.Contains(line, "0101") {
			t.Errorf("q1 row: %q", line)
		}
	}
}
