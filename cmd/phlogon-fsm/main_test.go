package main_test

import (
	"testing"

	"repro/internal/cmdtest"
)

func TestBadFlagExit2(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-fsm")
	res := cmdtest.Run(t, bin, "", "-no-such-flag")
	if res.ExitCode != 2 {
		t.Errorf("exit %d, want 2\nstderr: %s", res.ExitCode, res.Stderr)
	}
}

func TestOneBitAdd(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-fsm")
	res := cmdtest.Run(t, bin, "", "-a", "1", "-b", "1")
	if res.ExitCode != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", res.ExitCode, res.Stdout, res.Stderr)
	}
	cmdtest.MustContain(t, res.Stdout,
		"serial adder on phase macromodels", "result: CORRECT")
}
