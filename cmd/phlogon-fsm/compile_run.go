package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/phlogic"
	"repro/internal/ringosc"
)

// cmdCompile emits or validates a netlist-IR document: generators for the
// library datapaths (-adder, -shiftreg) or a validating round trip of an
// existing document (-in). Output is normalized, indented IR JSON.
func cmdCompile(args []string) {
	fs := flag.NewFlagSet("phlogon-fsm compile", flag.ExitOnError)
	adder := fs.Int("adder", 0, "emit an N-bit ripple-carry adder netlist")
	shiftreg := fs.Int("shiftreg", 0, "emit an N-stage shift-register netlist")
	in := fs.String("in", "", "validate and normalize an existing IR document (\"-\" for stdin)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	sources := 0
	for _, set := range []bool{*adder > 0, *shiftreg > 0, *in != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		fatal(fmt.Errorf("compile: exactly one of -adder, -shiftreg, -in required"))
	}

	var n *phlogic.Netlist
	switch {
	case *adder > 0:
		n = phlogic.RippleCarryAdder(*adder)
	case *shiftreg > 0:
		n = phlogic.ShiftRegister(*shiftreg)
	default:
		data, err := readInput(*in)
		if err != nil {
			fatal(err)
		}
		if n, err = phlogic.ParseNetlistJSON(data); err != nil {
			fatal(err)
		}
	}
	if err := n.Validate(); err != nil {
		fatal(err)
	}
	data, err := n.JSON()
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

// cmdRun compiles an IR document onto the phase-macromodel substrate and
// runs it — one settled word for combinational netlists (-word), a clocked
// bit-stream run for sequential ones (-streams) — printing each decoded
// output next to the golden Boolean result.
func cmdRun(args []string) {
	fs := flag.NewFlagSet("phlogon-fsm run", flag.ExitOnError)
	in := fs.String("in", "", "netlist IR document (\"-\" for stdin)")
	word := fs.String("word", "", "input word: one 0/1 per netlist input, declaration order")
	streams := fs.String("streams", "", "comma-separated LSB-first bit streams, one per input")
	syncAmp := fs.String("sync", "100u", "SYNC amplitude per latch")
	clk := fs.Float64("clk", 100, "reference cycles per clock period")
	settle := fs.Float64("settle", 0, "settle cycles for -word runs (0: default)")
	iosc := fs.Bool("iosc", false, "route inputs through an input oscillator array (-word only)")
	df = diag.AddFlags(fs)
	fs.Parse(args)

	ctx, err := df.Start(context.Background())
	if err != nil {
		fatal(err)
	}
	defer df.Stop()
	if *in == "" {
		fatal(fmt.Errorf("run: -in required"))
	}
	if (*word == "") == (*streams == "") {
		fatal(fmt.Errorf("run: exactly one of -word or -streams required"))
	}
	data, err := readInput(*in)
	if err != nil {
		fatal(err)
	}
	n, err := phlogic.ParseNetlistJSON(data)
	if err != nil {
		fatal(err)
	}
	prog, err := n.Compile()
	if err != nil {
		fatal(err)
	}
	sv, err := netlist.ParseValue(*syncAmp)
	if err != nil {
		fatal(err)
	}

	eng := engine.New(engine.Options{})
	_, _, p, err := eng.RingPPV(ctx, ringosc.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	m, err := phlogic.CompileMacro(n, p, p.F0, phlogic.MacroConfig{
		SyncAmp: sv, ClockCycles: *clk, SettleCycles: *settle,
		InputOscillators: *iosc,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("phase-logic run: %s: %d inputs, %d outputs, %d oscillator latches, f0 = %.5g Hz\n\n",
		n.Name, len(n.Inputs), len(n.Outputs), m.NumLatches(), p.F0)

	if *word != "" {
		runWord(m, prog, n, *word)
		return
	}
	runStreams(m, prog, n, *streams)
}

func runWord(m *phlogic.MacroMachine, prog *phlogic.Program, n *phlogic.Netlist, wordStr string) {
	if len(prog.Latches) > 0 {
		fatal(fmt.Errorf("run: %q is sequential (%d latches); use -streams", n.Name, len(prog.Latches)))
	}
	w, err := parseBits(wordStr)
	if err != nil {
		fatal(err)
	}
	if len(w) != len(n.Inputs) {
		fatal(fmt.Errorf("run: -word has %d bits for %d inputs", len(w), len(n.Inputs)))
	}
	truth, _, err := prog.EvalBool(w, nil)
	if err != nil {
		fatal(err)
	}
	bits, _, err := m.RunWord(w)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-10s %8s %8s | %s\n", "output", "decoded", "boolean", "ok")
	allOK := true
	for i, name := range n.Outputs {
		ok := bits[i] == truth[i]
		allOK = allOK && ok
		fmt.Printf("%-10s %8s %8s | %v\n", name, b01(bits[i]), b01(truth[i]), ok)
	}
	finish(allOK)
}

func runStreams(m *phlogic.MacroMachine, prog *phlogic.Program, n *phlogic.Netlist, streamsStr string) {
	parts := strings.Split(streamsStr, ",")
	if len(parts) != len(n.Inputs) {
		fatal(fmt.Errorf("run: -streams has %d streams for %d inputs", len(parts), len(n.Inputs)))
	}
	sts := make([][]bool, len(parts))
	nBits := 0
	for i, pstr := range parts {
		st, err := parseBits(pstr)
		if err != nil {
			fatal(err)
		}
		if i == 0 {
			nBits = len(st)
		} else if len(st) != nBits {
			fatal(fmt.Errorf("run: streams differ in length"))
		}
		sts[i] = st
	}
	// Golden trace: step the Boolean machine period by period. A latch-q
	// output is decoded after the slave captures, so its golden value at
	// period k is the *next* state; combinational outputs read the held one.
	qPos := map[int]int{}
	for s, l := range prog.Latches {
		qPos[l.Q] = s
	}
	golden := make([][]bool, len(n.Outputs))
	for i := range golden {
		golden[i] = make([]bool, nBits)
	}
	state := make([]bool, prog.NumState())
	for k := 0; k < nBits; k++ {
		ink := make([]bool, len(sts))
		for i := range sts {
			ink[i] = sts[i][k]
		}
		outs, next, err := prog.EvalBool(ink, state)
		if err != nil {
			fatal(err)
		}
		for i, net := range prog.Outputs {
			if s, isQ := qPos[net]; isQ {
				golden[i][k] = next[s]
			} else {
				golden[i][k] = outs[i]
			}
		}
		state = next
	}

	out, _, err := m.RunStreams(sts, nBits)
	if err != nil {
		fatal(err)
	}
	w := nBits
	if w < len("decoded") {
		w = len("decoded")
	}
	fmt.Printf("%-10s %*s %*s | %s\n", "output", w, "decoded", w, "boolean", "ok")
	allOK := true
	for i, name := range n.Outputs {
		ok := true
		for k := range out[i] {
			ok = ok && out[i][k] == golden[i][k]
		}
		allOK = allOK && ok
		fmt.Printf("%-10s %*s %*s | %v\n", name, w, bitString(out[i]), w, bitString(golden[i]), ok)
	}
	finish(allOK)
}

func finish(allOK bool) {
	fmt.Printf("\nresult: %s\n", map[bool]string{true: "CORRECT", false: "MISMATCH"}[allOK])
	if !allOK {
		df.Stop()
		os.Exit(1)
	}
}

// bitString renders an LSB-first bit slice in stream order (LSB leftmost,
// matching the -streams input format).
func bitString(v []bool) string {
	var sb strings.Builder
	for _, b := range v {
		sb.WriteByte(map[bool]byte{true: '1', false: '0'}[b])
	}
	return sb.String()
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
