// Command phlogon-fsm simulates phase-logic FSMs and datapaths on PPV
// phase macromodels.
//
// With no subcommand it runs the paper's serial adder (Fig. 15) and prints
// the decoded outputs next to the golden Boolean result:
//
//	phlogon-fsm -a 101 -b 101 [-sync 100u] [-clk 100] [-ascii]
//
// Two subcommands drive the netlist-IR compiler instead:
//
//	phlogon-fsm compile -adder 8 > adder8.json     # emit IR documents
//	phlogon-fsm compile -in design.json            # validate + normalize
//	phlogon-fsm run -in adder8.json -word 10110100 # compile & run a word
//	phlogon-fsm run -in shift4.json -streams 101101
//
// Bit strings are LSB-first; -word and -streams list one entry per netlist
// input, in declaration order.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/phlogic"
	"repro/internal/plot"
	"repro/internal/ringosc"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "compile":
			cmdCompile(os.Args[2:])
			return
		case "run":
			cmdRun(os.Args[2:])
			return
		}
	}
	serialAdderMain()
}

func serialAdderMain() {
	aStr := flag.String("a", "101", "input stream a, LSB first")
	bStr := flag.String("b", "101", "input stream b, LSB first")
	syncAmp := flag.String("sync", "100u", "SYNC amplitude per latch")
	clk := flag.Float64("clk", 100, "reference cycles per clock period")
	ascii := flag.Bool("ascii", false, "plot the phase trajectories")
	df = diag.AddFlags(flag.CommandLine)
	flag.Parse()

	ctx, err := df.Start(context.Background())
	if err != nil {
		fatal(err)
	}
	defer df.Stop()
	aBits, err := parseBits(*aStr)
	if err != nil {
		fatal(err)
	}
	bBits, err := parseBits(*bStr)
	if err != nil {
		fatal(err)
	}
	if len(aBits) != len(bBits) {
		fatal(fmt.Errorf("streams differ in length"))
	}
	sv, err := netlist.ParseValue(*syncAmp)
	if err != nil {
		fatal(err)
	}

	eng := engine.New(engine.Options{})
	_, _, p, err := eng.RingPPV(ctx, ringosc.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	sa, err := phlogic.NewSerialAdder(p, p.F0, aBits, bBits, phlogic.SerialAdderConfig{
		SyncAmp: sv, ClockCycles: *clk,
	})
	if err != nil {
		fatal(err)
	}
	n := len(aBits)
	res, err := sa.Run(float64(n), 0.25)
	if err != nil {
		fatal(err)
	}
	sums, err := sa.ReadSums(res, n)
	if err != nil {
		fatal(err)
	}
	carries, err := sa.ReadCarries(res, n)
	if err != nil {
		fatal(err)
	}
	wantSum, wantCarry := phlogic.GoldenSerialAdder(aBits, bBits)

	fmt.Printf("serial adder on phase macromodels: f0 = %.5g Hz, clock = %.0f cycles, %d RK4 steps\n\n",
		p.F0, *clk, res.Steps)
	fmt.Printf("%4s %3s %3s | %5s %5s | %9s %9s | %s\n", "bit", "a", "b", "sum", "cout", "want_sum", "want_cout", "ok")
	allOK := true
	for i := 0; i < n; i++ {
		ok := sums[i] == wantSum[i] && carries[i] == wantCarry[i]
		allOK = allOK && ok
		fmt.Printf("%4d %3s %3s | %5s %5s | %9s %9s | %v\n",
			i, b01(aBits[i]), b01(bBits[i]), b01(sums[i]), b01(carries[i]),
			b01(wantSum[i]), b01(wantCarry[i]), ok)
	}
	fmt.Printf("\nresult: %s\n", map[bool]string{true: "CORRECT", false: "MISMATCH"}[allOK])

	if *ascii {
		P := sa.Clock.Period
		x := make([]float64, len(res.T))
		q1 := make([]float64, len(res.T))
		q2 := make([]float64, len(res.T))
		for i := range res.T {
			x[i] = res.T[i] / P
			q1[i] = wrap01(res.Dphi[0][i])
			q2[i] = wrap01(res.Dphi[1][i])
		}
		ch := plot.New("Δφ of Q1 (master) and Q2 (slave)", "clock periods", "Δφ (cycles)")
		ch.Add("Q1", x, q1)
		ch.Add("Q2", x, q2)
		fmt.Println(ch.ASCII(90, 18))
	}
	if !allOK {
		df.Stop()
		os.Exit(1)
	}
}

func parseBits(s string) ([]bool, error) {
	out := make([]bool, 0, len(s))
	for _, c := range s {
		switch c {
		case '0':
			out = append(out, false)
		case '1':
			out = append(out, true)
		default:
			return nil, fmt.Errorf("bit strings must be 0/1, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty bit string")
	}
	return out, nil
}

func b01(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func wrap01(x float64) float64 {
	x = math.Mod(x, 1)
	if x < 0 {
		x++
	}
	return x
}

// df is package-level so fatal can flush profiles/metrics before exiting.
var df *diag.Flags

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phlogon-fsm:", err)
	if df != nil {
		df.Stop()
	}
	os.Exit(1)
}
