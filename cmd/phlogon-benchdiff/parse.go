package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// SetVersion guards the JSON schema of a pinned baseline.
const SetVersion = 1

// Result is one benchmark's metrics as reported by `go test -bench`.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Set is a parsed benchmark run, keyed by benchmark name with any
// -GOMAXPROCS suffix stripped so baselines transfer across machines.
type Set struct {
	Version    int               `json:"version"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkFoo-8    100    123.4 ns/op    56 B/op    7 allocs/op
//
// The B/op and allocs/op columns are optional (-benchmem dependent).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+\d+\s+([0-9.eE+]+) ns/op(?:\s+([0-9.eE+]+) B/op)?(?:\s+([0-9.eE+]+) allocs/op)?`)

// gomaxprocsSuffix strips the trailing -N go test appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// ParseBench extracts benchmark results from `go test -bench` output,
// ignoring non-benchmark lines (PASS, ok, warnings). Duplicate names (from
// `-count N` repeats) keep the minimum ns/op and B/op — the minimum is the
// standard noise-robust estimator of a benchmark's true cost, since
// scheduling and frequency-scaling jitter only ever add time — and the
// maximum allocs/op, which is deterministic and must not be flattered.
func ParseBench(r io.Reader) (*Set, error) {
	set := &Set{Version: SetVersion, Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		var res Result
		var err error
		if res.NsPerOp, err = strconv.ParseFloat(m[2], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		if m[3] != "" {
			if res.BytesPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %w", sc.Text(), err)
			}
		}
		if m[4] != "" {
			if res.AllocsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
		}
		if prev, ok := set.Benchmarks[name]; ok {
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			if prev.BytesPerOp != 0 && (res.BytesPerOp == 0 || prev.BytesPerOp < res.BytesPerOp) {
				res.BytesPerOp = prev.BytesPerOp
			}
			if prev.AllocsPerOp > res.AllocsPerOp {
				res.AllocsPerOp = prev.AllocsPerOp
			}
		}
		set.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// Diff is one benchmark's baseline-vs-current verdict.
type Diff struct {
	Name       string
	Base, Cur  *Result // nil when the benchmark is missing on that side
	TimeRatio  float64 // cur/base ns/op (0 when either side is missing)
	AllocRatio float64 // cur/base allocs/op (0 when either side lacks counts)
	ByteRatio  float64 // cur/base B/op (0 when either side lacks counts)
	Regressed  bool
	Why        string
}

func (d Diff) String() string {
	status := "ok  "
	if d.Regressed {
		status = "FAIL"
	}
	switch {
	case d.Base == nil:
		return fmt.Sprintf("%s %-36s new benchmark (no baseline)", status, d.Name)
	case d.Cur == nil:
		return fmt.Sprintf("%s %-36s missing from this run", status, d.Name)
	default:
		s := fmt.Sprintf("%s %-36s time ×%.2f", status, d.Name, d.TimeRatio)
		if d.AllocRatio > 0 {
			s += fmt.Sprintf("  allocs ×%.2f", d.AllocRatio)
		}
		if d.ByteRatio > 0 {
			s += fmt.Sprintf("  bytes ×%.2f", d.ByteRatio)
		}
		if d.Why != "" {
			s += "  (" + d.Why + ")"
		}
		return s
	}
}

// Compare evaluates cur against base. A benchmark regresses when its ns/op
// exceeds (1+tol)× the baseline, its allocs/op exceed (1+allocTol)× the
// baseline, its B/op exceed (1+bytesTol)× the baseline, or it vanished from
// the run; new benchmarks are reported but pass (pin them with
// `make bench-baseline`). Allocation counts and bytes are only gated when
// both sides carry them (-benchmem on both the baseline and current run).
func Compare(base, cur *Set, tol, allocTol, bytesTol float64) []Diff {
	var diffs []Diff
	for _, name := range sortedNames(base, cur) {
		d := Diff{Name: name}
		if b, ok := base.Benchmarks[name]; ok {
			b := b
			d.Base = &b
		}
		if c, ok := cur.Benchmarks[name]; ok {
			c := c
			d.Cur = &c
		}
		switch {
		case d.Base == nil:
			// New benchmark: informational only.
		case d.Cur == nil:
			d.Regressed = true
			d.Why = "benchmark disappeared"
		default:
			if d.Base.NsPerOp > 0 {
				d.TimeRatio = d.Cur.NsPerOp / d.Base.NsPerOp
			}
			if d.Base.AllocsPerOp > 0 {
				d.AllocRatio = d.Cur.AllocsPerOp / d.Base.AllocsPerOp
			}
			if d.Base.BytesPerOp > 0 {
				d.ByteRatio = d.Cur.BytesPerOp / d.Base.BytesPerOp
			}
			if d.TimeRatio > 1+tol {
				d.Regressed = true
				d.Why = fmt.Sprintf("slower than tol ×%.2f", 1+tol)
			}
			if d.AllocRatio > 1+allocTol {
				d.Regressed = true
				if d.Why != "" {
					d.Why += "; "
				}
				d.Why += fmt.Sprintf("allocs above tol ×%.2f", 1+allocTol)
			}
			if d.ByteRatio > 1+bytesTol {
				d.Regressed = true
				if d.Why != "" {
					d.Why += "; "
				}
				d.Why += fmt.Sprintf("bytes above tol ×%.2f", 1+bytesTol)
			}
		}
		diffs = append(diffs, d)
	}
	return diffs
}
