package main_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cmdtest"
)

func runWithStdin(t *testing.T, bin, stdin string, args ...string) cmdtest.Result {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = strings.NewReader(stdin)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	res := cmdtest.Result{Stdout: stdout.String(), Stderr: stderr.String()}
	if exitErr, ok := err.(*exec.ExitError); ok {
		res.ExitCode = exitErr.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return res
}

const fakeBench = "BenchmarkX-8 \t 1 \t 100 ns/op \t 10 B/op \t 5 allocs/op\nPASS\n"

func TestBadSubcommandExit2(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-benchdiff")
	for _, args := range [][]string{nil, {"bogus"}} {
		res := cmdtest.Run(t, bin, "", args...)
		if res.ExitCode != 2 {
			t.Errorf("args %v: exit %d, want 2\nstderr: %s", args, res.ExitCode, res.Stderr)
		}
	}
}

func TestParseCompareRoundTrip(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-benchdiff")
	baseline := filepath.Join(t.TempDir(), "base.json")

	res := runWithStdin(t, bin, fakeBench, "parse", "-o", baseline)
	if res.ExitCode != 0 {
		t.Fatalf("parse exit %d\nstderr: %s", res.ExitCode, res.Stderr)
	}
	cmdtest.MustExist(t, baseline)

	// Same numbers: compare passes.
	res = runWithStdin(t, bin, fakeBench, "compare", "-baseline", baseline)
	if res.ExitCode != 0 {
		t.Fatalf("self-compare exit %d\nstdout: %s", res.ExitCode, res.Stdout)
	}
	cmdtest.MustContain(t, res.Stdout, "0 regressed")

	// 10× slower: compare must exit 1 and name the offender.
	slow := strings.Replace(fakeBench, "100 ns/op", "1000 ns/op", 1)
	res = runWithStdin(t, bin, slow, "compare", "-baseline", baseline)
	if res.ExitCode != 1 {
		t.Fatalf("regressed compare exit %d, want 1\nstdout: %s", res.ExitCode, res.Stdout)
	}
	cmdtest.MustContain(t, res.Stdout, "FAIL BenchmarkX", "1 regressed")

	// 10× more bytes per op: gated by -bytes-tol.
	fat := strings.Replace(fakeBench, "10 B/op", "100 B/op", 1)
	res = runWithStdin(t, bin, fat, "compare", "-baseline", baseline)
	if res.ExitCode != 1 {
		t.Fatalf("bytes-regressed compare exit %d, want 1\nstdout: %s", res.ExitCode, res.Stdout)
	}
	cmdtest.MustContain(t, res.Stdout, "bytes above tol")

	// ...and waved through when the tolerance allows it.
	res = runWithStdin(t, bin, fat, "compare", "-baseline", baseline, "-bytes-tol", "20")
	if res.ExitCode != 0 {
		t.Fatalf("relaxed bytes-tol exit %d, want 0\nstdout: %s", res.ExitCode, res.Stdout)
	}
}

func TestCompareOnlyFilter(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-benchdiff")
	baseline := filepath.Join(t.TempDir(), "base.json")
	two := fakeBench + "BenchmarkY-8 \t 1 \t 100 ns/op\nPASS\n"
	if res := runWithStdin(t, bin, two, "parse", "-o", baseline); res.ExitCode != 0 {
		t.Fatalf("parse exit %d\nstderr: %s", res.ExitCode, res.Stderr)
	}

	// Y regresses 10x, but -only X must ignore it and pass.
	slowY := fakeBench + "BenchmarkY-8 \t 1 \t 1000 ns/op\nPASS\n"
	res := runWithStdin(t, bin, slowY, "compare", "-baseline", baseline, "-only", "BenchmarkX$")
	if res.ExitCode != 0 {
		t.Fatalf("-only exit %d, want 0\nstdout: %s", res.ExitCode, res.Stdout)
	}
	cmdtest.MustContain(t, res.Stdout, "1 benchmarks compared", "0 regressed")

	// Without the filter the same input must fail.
	res = runWithStdin(t, bin, slowY, "compare", "-baseline", baseline)
	if res.ExitCode != 1 {
		t.Fatalf("unfiltered exit %d, want 1\nstdout: %s", res.ExitCode, res.Stdout)
	}

	// A pattern matching nothing is a usage error, not a silent pass.
	res = runWithStdin(t, bin, slowY, "compare", "-baseline", baseline, "-only", "NoSuchBench")
	if res.ExitCode != 1 {
		t.Fatalf("no-match exit %d, want 1\nstderr: %s", res.ExitCode, res.Stderr)
	}
	cmdtest.MustContain(t, res.Stderr, "matches no benchmark")
}

func TestCompareRequiresBaselineFlag(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-benchdiff")
	res := runWithStdin(t, bin, fakeBench, "compare")
	if res.ExitCode != 2 {
		t.Errorf("exit %d, want 2\nstderr: %s", res.ExitCode, res.Stderr)
	}
}
