// Command phlogon-benchdiff pins and compares benchmark baselines.
//
// `go test -bench` output is not machine-comparable by itself; this tool
// parses it into a stable JSON shape so a committed baseline
// (BENCH_baseline.json) can gate performance regressions:
//
//	go test -run '^$' -bench . -benchtime 1x . | phlogon-benchdiff parse -o BENCH_baseline.json
//	go test -run '^$' -bench . -benchtime 1x . | phlogon-benchdiff compare -baseline BENCH_baseline.json
//
// compare exits 1 when any benchmark slows down or allocates beyond the
// tolerances, or when a baselined benchmark disappears. Timing tolerance
// defaults wide (-benchtime 1x numbers are noisy); allocation counts are
// deterministic, so their tolerance is tight. For tight timing gates, run
// the benchmark with `-count N` — parse keeps the per-name minimum, which
// suppresses scheduling noise — and restrict compare with -only.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"

	"repro/internal/diag"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	case "ratio":
		cmdRatio(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "phlogon-benchdiff: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  phlogon-benchdiff parse   [-o file]                         < bench-output
  phlogon-benchdiff compare -baseline file [-tol x] [-alloc-tol x] [-bytes-tol x] [-only regexp] < bench-output
  phlogon-benchdiff ratio   -num bench -den bench -min x      < bench-output`)
}

// df is package-level so fatal can flush profiles before exiting. benchdiff
// performs no numerics itself, so only the pprof half of the bundle is
// interesting here; the flags exist on every phlogon binary for uniformity.
var df *diag.Flags

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phlogon-benchdiff:", err)
	if df != nil {
		df.Stop()
	}
	os.Exit(1)
}

func startDiag(fs *flag.FlagSet, args []string) {
	fs.Parse(args)
	if _, err := df.Start(context.Background()); err != nil {
		fatal(err)
	}
}

func readSet(r io.Reader) *Set {
	set, err := ParseBench(r)
	if err != nil {
		fatal(err)
	}
	if len(set.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	return set
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("o", "-", "output file ('-' = stdout)")
	df = diag.AddFlags(fs)
	startDiag(fs, args)
	defer df.Stop()

	set := readSet(os.Stdin)
	data, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "phlogon-benchdiff: wrote %d benchmarks to %s\n",
		len(set.Benchmarks), *out)
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	baseFile := fs.String("baseline", "", "baseline JSON written by parse (required)")
	tol := fs.Float64("tol", 1.0, "allowed fractional ns/op slowdown (1.0 = 2× the baseline)")
	allocTol := fs.Float64("alloc-tol", 0.15, "allowed fractional allocs/op growth")
	bytesTol := fs.Float64("bytes-tol", 0.25, "allowed fractional B/op growth")
	only := fs.String("only", "", "compare only benchmarks matching this regexp")
	df = diag.AddFlags(fs)
	startDiag(fs, args)
	defer df.Stop()
	if *baseFile == "" {
		fmt.Fprintln(os.Stderr, "phlogon-benchdiff: -baseline is required")
		fs.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(*baseFile)
	if err != nil {
		fatal(err)
	}
	var base Set
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *baseFile, err))
	}
	if base.Version != SetVersion {
		fatal(fmt.Errorf("%s: version %d, want %d (re-run `make bench-baseline`)",
			*baseFile, base.Version, SetVersion))
	}

	cur := readSet(os.Stdin)
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fatal(fmt.Errorf("-only: %w", err))
		}
		filterSet(&base, re)
		filterSet(cur, re)
		if len(cur.Benchmarks) == 0 && len(base.Benchmarks) == 0 {
			fatal(fmt.Errorf("-only %q matches no benchmark on either side", *only))
		}
	}
	diffs := Compare(&base, cur, *tol, *allocTol, *bytesTol)
	bad := 0
	for _, d := range diffs {
		if d.Regressed {
			bad++
		}
		fmt.Println(d)
	}
	fmt.Printf("%d benchmarks compared, %d regressed (tol %+.0f%% time, %+.0f%% allocs, %+.0f%% bytes)\n",
		len(diffs), bad, *tol*100, *allocTol*100, *bytesTol*100)
	if bad > 0 {
		df.Stop()
		os.Exit(1)
	}
}

// cmdRatio gates a speedup claim: ns/op(num) / ns/op(den) must be at least
// -min. Unlike compare's absolute baselines, a ratio of two benchmarks from
// the same run is robust to machine speed — load slows both sides together —
// which is what makes it suitable for CI assertions like "the batched
// Monte-Carlo path stays ≥5x faster than the scalar one".
func cmdRatio(args []string) {
	fs := flag.NewFlagSet("ratio", flag.ExitOnError)
	num := fs.String("num", "", "numerator benchmark name, the slow side (required)")
	den := fs.String("den", "", "denominator benchmark name, the fast side (required)")
	min := fs.Float64("min", 1.0, "minimum allowed ns/op(num) / ns/op(den)")
	df = diag.AddFlags(fs)
	startDiag(fs, args)
	defer df.Stop()
	if *num == "" || *den == "" {
		fmt.Fprintln(os.Stderr, "phlogon-benchdiff: -num and -den are required")
		fs.Usage()
		os.Exit(2)
	}

	cur := readSet(os.Stdin)
	lookup := func(name string) Result {
		if r, ok := cur.Benchmarks[name]; ok {
			return r
		}
		fatal(fmt.Errorf("benchmark %q not found on stdin (have %v)", name, sortedNames(cur, cur)))
		panic("unreachable")
	}
	n, d := lookup(*num), lookup(*den)
	if d.NsPerOp <= 0 {
		fatal(fmt.Errorf("%s: non-positive ns/op %g", *den, d.NsPerOp))
	}
	ratio := n.NsPerOp / d.NsPerOp
	fmt.Printf("%s / %s = %.2fx (min %.2fx)\n", *num, *den, ratio, *min)
	if ratio < *min {
		fmt.Printf("FAIL: speedup %.2fx below required %.2fx\n", ratio, *min)
		df.Stop()
		os.Exit(1)
	}
}

// filterSet drops benchmarks whose name does not match re.
func filterSet(s *Set, re *regexp.Regexp) {
	for name := range s.Benchmarks {
		if !re.MatchString(name) {
			delete(s.Benchmarks, name)
		}
	}
}

// sortedNames returns the union of benchmark names in both sets, sorted.
func sortedNames(a, b *Set) []string {
	seen := map[string]bool{}
	for n := range a.Benchmarks {
		seen[n] = true
	}
	for n := range b.Benchmarks {
		seen[n] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
