package main

import (
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: repro
BenchmarkShooting1N1P-8        	       3	  41234567 ns/op	 1234567 B/op	    4567 allocs/op
BenchmarkFig07LockingRangeWorkersN 	       1	   3107396 ns/op	   16744 B/op	     363 allocs/op
BenchmarkNoAllocCols           	     100	     987.5 ns/op
BenchmarkDup-4                 	       1	       200 ns/op	     80 B/op	      9 allocs/op
BenchmarkDup-4                 	       1	       100 ns/op	     96 B/op	      7 allocs/op
PASS
ok  	repro	3.927s
`

func TestParseBench(t *testing.T) {
	set, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if set.Version != SetVersion {
		t.Errorf("version = %d, want %d", set.Version, SetVersion)
	}
	if len(set.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(set.Benchmarks), set.Benchmarks)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	got, ok := set.Benchmarks["BenchmarkShooting1N1P"]
	if !ok {
		t.Fatal("BenchmarkShooting1N1P missing (suffix not stripped?)")
	}
	if got.NsPerOp != 41234567 || got.BytesPerOp != 1234567 || got.AllocsPerOp != 4567 {
		t.Errorf("BenchmarkShooting1N1P = %+v", got)
	}
	// A name without suffix parses as-is.
	if _, ok := set.Benchmarks["BenchmarkFig07LockingRangeWorkersN"]; !ok {
		t.Error("suffix-less benchmark name missing")
	}
	// Missing -benchmem columns default to zero.
	if got := set.Benchmarks["BenchmarkNoAllocCols"]; got.NsPerOp != 987.5 ||
		got.BytesPerOp != 0 || got.AllocsPerOp != 0 {
		t.Errorf("BenchmarkNoAllocCols = %+v", got)
	}
	// -count repeats fold to min time / min bytes / max allocs.
	if got := set.Benchmarks["BenchmarkDup"]; got.NsPerOp != 100 ||
		got.BytesPerOp != 80 || got.AllocsPerOp != 9 {
		t.Errorf("BenchmarkDup = %+v, want min ns/op 100, min B/op 80, max allocs 9", got)
	}
}

func TestParseBenchEmptyInput(t *testing.T) {
	set, err := ParseBench(strings.NewReader("PASS\nok\treload\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from benchless output", len(set.Benchmarks))
	}
}

func mkSet(pairs map[string]Result) *Set {
	return &Set{Version: SetVersion, Benchmarks: pairs}
}

func TestCompareVerdicts(t *testing.T) {
	base := mkSet(map[string]Result{
		"BenchmarkStable":  {NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 1000},
		"BenchmarkSlower":  {NsPerOp: 100, AllocsPerOp: 10},
		"BenchmarkAllocUp": {NsPerOp: 100, AllocsPerOp: 10},
		"BenchmarkBytesUp": {NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 1000},
		"BenchmarkNoMem":   {NsPerOp: 100}, // baseline never ran -benchmem
		"BenchmarkGone":    {NsPerOp: 100},
	})
	cur := mkSet(map[string]Result{
		"BenchmarkStable":  {NsPerOp: 150, AllocsPerOp: 10, BytesPerOp: 1100}, // within every tol
		"BenchmarkSlower":  {NsPerOp: 250, AllocsPerOp: 10},                   // past ×2 tol
		"BenchmarkAllocUp": {NsPerOp: 100, AllocsPerOp: 13},                   // past ×1.15 allocs
		"BenchmarkBytesUp": {NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 1500}, // past ×1.25 bytes
		"BenchmarkNoMem":   {NsPerOp: 100, BytesPerOp: 9999},                  // not gated without a bytes baseline
		"BenchmarkNew":     {NsPerOp: 100},
	})
	verdicts := map[string]bool{}
	for _, d := range Compare(base, cur, 1.0, 0.15, 0.25) {
		verdicts[d.Name] = d.Regressed
	}
	want := map[string]bool{
		"BenchmarkStable":  false,
		"BenchmarkSlower":  true,
		"BenchmarkAllocUp": true,
		"BenchmarkBytesUp": true,
		"BenchmarkNoMem":   false, // bytes gate needs both sides instrumented
		"BenchmarkGone":    true,  // disappeared
		"BenchmarkNew":     false, // informational
	}
	for name, regressed := range want {
		got, ok := verdicts[name]
		if !ok {
			t.Errorf("%s missing from diff", name)
			continue
		}
		if got != regressed {
			t.Errorf("%s regressed = %v, want %v", name, got, regressed)
		}
	}
	if len(verdicts) != len(want) {
		t.Errorf("got %d diffs, want %d", len(verdicts), len(want))
	}
}

func TestCompareExactBaselinePasses(t *testing.T) {
	base := mkSet(map[string]Result{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 7, BytesPerOp: 512}})
	for _, d := range Compare(base, base, 1.0, 0.15, 0.25) {
		if d.Regressed {
			t.Errorf("self-comparison regressed: %s", d)
		}
	}
}
