// Command phlogon-figs regenerates every evaluation figure of the paper
// (CSV + SVG into an output directory, metrics and ASCII previews on
// stdout), plus the efficiency comparison table.
//
// Usage:
//
//	phlogon-figs [-out out] [-fig figNN] [-ascii] [-eff] [-workers n]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"repro/internal/diag"
	"repro/internal/figs"
)

func main() {
	outDir := flag.String("out", "out", "output directory for SVG/CSV artifacts ('' disables)")
	only := flag.String("fig", "", "generate a single figure (e.g. fig07); empty = all")
	ascii := flag.Bool("ascii", false, "print ASCII previews of the charts")
	eff := flag.Bool("eff", true, "also run the efficiency comparison")
	workers := flag.Int("workers", 0, "worker pool size for figure/sweep fan-out (0 = NumCPU)")
	df = diag.AddFlags(flag.CommandLine)
	flag.Parse()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runCtx, err := df.Start(sigCtx)
	if err != nil {
		fatal(err)
	}
	defer df.Stop()

	ctx := figs.New(*outDir)
	ctx.Workers = *workers
	ctx.Ctx = runCtx
	var results []*figs.Result
	if *only != "" {
		gen := map[string]func() (*figs.Result, error){
			"fig04": ctx.Fig04, "fig05": ctx.Fig05, "fig06": ctx.Fig06,
			"fig07": ctx.Fig07, "fig08": ctx.Fig08, "fig10": ctx.Fig10,
			"fig11": ctx.Fig11, "fig12": ctx.Fig12, "fig14": ctx.Fig14,
			"fig16": ctx.Fig16, "fig17": ctx.Fig17, "fig19": ctx.Fig19,
			"fig20": ctx.Fig20,
		}
		fn, ok := gen[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "phlogon-figs: unknown figure %q\n", *only)
			df.Stop()
			os.Exit(2)
		}
		r, err := fn()
		if err != nil {
			fatal(err)
		}
		results = append(results, r)
	} else {
		var err error
		results, err = ctx.All()
		if err != nil {
			fatal(err)
		}
	}

	for _, r := range results {
		fmt.Printf("== %s — %s\n", r.Name, r.Title)
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("   %-28s %g\n", k, r.Metrics[k])
		}
		if r.Notes != "" {
			fmt.Printf("   note: %s\n", r.Notes)
		}
		if *ascii && r.Chart != nil {
			fmt.Println(r.Chart.ASCII(92, 22))
		}
		fmt.Println()
	}

	if *eff && *only == "" {
		rows, err := ctx.Efficiency()
		if err != nil {
			fatal(err)
		}
		fmt.Println("== efficiency comparison (paper Secs. 2 / 4.3)")
		fmt.Print(figs.EffSummary(rows))
	}
	if *outDir != "" {
		fmt.Printf("artifacts written to %s/\n", *outDir)
	}
}

// df is package-level so fatal can flush profiles/metrics before exiting.
var df *diag.Flags

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phlogon-figs:", err)
	if df != nil {
		df.Stop()
	}
	os.Exit(1)
}
