package main_test

import (
	"path/filepath"
	"testing"

	"repro/internal/cmdtest"
)

func TestUnknownFigureExit2(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-figs")
	res := cmdtest.Run(t, bin, "", "-fig", "bogus")
	if res.ExitCode != 2 {
		t.Errorf("exit %d, want 2\nstderr: %s", res.ExitCode, res.Stderr)
	}
}

func TestSingleFigureArtifacts(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-figs")
	out := t.TempDir()
	res := cmdtest.Run(t, bin, "", "-fig", "fig04", "-out", out, "-eff=false")
	if res.ExitCode != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", res.ExitCode, res.Stdout, res.Stderr)
	}
	cmdtest.MustContain(t, res.Stdout, "== fig04", "artifacts written to")
	cmdtest.MustExist(t, filepath.Join(out, "fig04.svg"))
}
