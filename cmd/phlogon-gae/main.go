// Command phlogon-gae runs the Generalized Adler analyses on the paper's
// ring-oscillator latch: lock prediction, locking range, equilibrium and
// phase-error sweeps, and bit-flip transients — the designer-facing
// facilities of the paper's Sec. 4.
//
// Usage:
//
//	phlogon-gae lock    -sync 100u [-d 0] [-f1 9.6k] [-2n1p]
//	phlogon-gae range   -sync 100u [-2n1p] [-workers n]
//	phlogon-gae sweep-d -sync 120u -dmax 200u [-workers n]
//	phlogon-gae flip    -sync 120u -d 150u [-cycles 3000]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/gae"
	"repro/internal/netlist"
	"repro/internal/phasemacro"
	"repro/internal/plot"
	"repro/internal/ringosc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	syncAmp := fs.String("sync", "100u", "SYNC current amplitude")
	dAmp := fs.String("d", "0", "D input current amplitude")
	f1s := fs.String("f1", "", "reference frequency (default: the latch's f0)")
	use2n1p := fs.Bool("2n1p", false, "use the 2N1P (asymmetric) ring")
	dmax := fs.String("dmax", "200u", "sweep-d: maximum D amplitude")
	cycles := fs.Float64("cycles", 3000, "flip: simulated reference cycles")
	workers := fs.Int("workers", 0, "worker pool size for the sweep subcommands (0 = NumCPU)")
	df = diag.AddFlags(fs)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, err := df.Start(sigCtx)
	if err != nil {
		fatal(err)
	}
	defer df.Stop()

	cfg := ringosc.DefaultConfig()
	if *use2n1p {
		cfg = ringosc.Config2N1P()
	}
	eng := engine.New(engine.Options{Workers: *workers})
	_, _, p, err := eng.RingPPV(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	latch := &phasemacro.Latch{P: p, Node: 0, Out: 0}
	cal, err := phasemacro.Calibrate(latch, 10e3)
	if err != nil {
		fatal(err)
	}
	sv, err := netlist.ParseValue(*syncAmp)
	if err != nil {
		fatal(err)
	}
	dv, err := netlist.ParseValue(*dAmp)
	if err != nil {
		fatal(err)
	}
	f1 := p.F0
	if *f1s != "" {
		if f1, err = netlist.ParseValue(*f1s); err != nil {
			fatal(err)
		}
	}
	dPhase := cmplx.Phase(p.Harmonic(0, 1))/(2*math.Pi) - 0.25
	m := gae.NewModel(p, f1,
		gae.Injection{Name: "SYNC", Node: 0, Amp: sv, Harmonic: 2, Phase: cal.SyncPhase},
		gae.Injection{Name: "D", Node: 0, Amp: dv, Harmonic: 1, Phase: dPhase},
	)
	fmt.Printf("latch: f0 = %.6g Hz, |V1| = %.4g, |V2| = %.4g; f1 = %.6g Hz (detune %.3g)\n\n",
		p.F0, p.NodeSeries[0].Magnitude(1), p.NodeSeries[0].Magnitude(2), f1, m.Detune())

	switch cmd {
	case "lock":
		eq := m.Equilibria()
		if len(eq) == 0 {
			fmt.Println("no equilibria: SHIL/IL will NOT happen at this drive and detuning")
			return
		}
		fmt.Printf("%d equilibria:\n", len(eq))
		for _, e := range eq {
			kind := "unstable"
			if e.Stable {
				kind = "STABLE"
			}
			fmt.Printf("  Δφ* = %.5f cycles   g' = %+.4g   %s\n", e.Dphi, e.GPrime, kind)
		}
		x, g := m.GCurve(121)
		ch := plot.New("g(Δφ) vs LHS", "Δφ (cycles)", "g")
		ch.Add("g", x, g)
		lhs := make([]float64, len(x))
		for i := range lhs {
			lhs[i] = m.Detune()
		}
		ch.Add("LHS", x, lhs)
		fmt.Println(ch.ASCII(80, 18))
	case "range":
		// The sweep goes through the engine's batch API: the PSS→PPV chain is
		// already cached from the warm-up above, so the batch only pays for
		// the GAE band computations.
		amps := gae.Linspace(0, 2*sv, 21)
		res, err := eng.GAESweepBatch(ctx, []engine.GAESweepRequest{{
			Config: cfg,
			F1:     f1,
			Injections: []gae.Injection{
				{Name: "SYNC", Node: 0, Amp: sv, Harmonic: 2, Phase: cal.SyncPhase},
				{Name: "D", Node: 0, Amp: dv, Harmonic: 1, Phase: dPhase},
			},
			SyncNode: 0, SyncHarm: 2,
			Amps: amps,
		}})
		if err != nil {
			fatal(err)
		}
		pts := res[0].Points
		fmt.Printf("%12s %14s %14s %12s\n", "SYNC [µA]", "f1_lo [Hz]", "f1_hi [Hz]", "width [Hz]")
		for _, pt := range pts {
			fmt.Printf("%12.4g %14.6g %14.6g %12.4g\n", pt.Amp*1e6, pt.F1Lo, pt.F1Hi, pt.F1Hi-pt.F1Lo)
		}
	case "sweep-d":
		dm, err := netlist.ParseValue(*dmax)
		if err != nil {
			fatal(err)
		}
		amps := gae.Linspace(0, dm, 41)
		pts, err := m.SweepInjectionAmplitudeCtx(ctx, 1, amps, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%12s %10s  %s\n", "D [µA]", "#stable", "stable Δφ*")
		for _, pt := range pts {
			fmt.Printf("%12.4g %10d  %v\n", pt.Param*1e6, len(pt.Stable), pt.Stable)
		}
	case "flip":
		T1 := 1 / f1
		tr := m.TransientCtx(ctx, 0.497, 0, *cycles*T1, T1)
		st := tr.SettleTime(0.02)
		fmt.Printf("flip transient: final Δφ = %.4f, settle time = %.4g ms (%.0f cycles)\n",
			tr.Final(), st*1e3, st/T1)
		n := 200
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			tt := float64(i) / float64(n-1) * *cycles * T1
			x[i] = tt * 1e3
			j := 0
			for j < len(tr.T)-1 && tr.T[j+1] <= tt {
				j++
			}
			y[i] = tr.Dphi[j]
		}
		ch := plot.New("GAE flip transient", "t [ms]", "Δφ (cycles)")
		ch.Add("Δφ", x, y)
		fmt.Println(ch.ASCII(80, 18))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: phlogon-gae {lock|range|sweep-d|flip} [flags]")
	os.Exit(2)
}

// df is package-level so fatal can flush profiles/metrics before exiting.
var df *diag.Flags

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phlogon-gae:", err)
	if df != nil {
		df.Stop()
	}
	os.Exit(1)
}
