// Command phlogon-pss computes the periodic steady state of an oscillator
// netlist by shooting (autonomous: unknown period) and optionally refines
// it with harmonic balance, reporting frequency, Floquet multipliers and
// the PSS waveform.
//
// Usage:
//
//	phlogon-pss -deck ring.cir -f0 9.6k [-hb] [-csv pss.csv] [-ascii]
//	            [-metrics|-metrics-json] [-cpuprofile f] [-memprofile f]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/cmplx"
	"os"

	"repro/internal/diag"
	"repro/internal/linalg"
	"repro/internal/netlist"
	"repro/internal/plot"
	"repro/internal/pss"
	"repro/internal/wave"
)

func main() {
	deck := flag.String("deck", "", "netlist file (required)")
	f0guess := flag.String("f0", "", "frequency guess (required)")
	hb := flag.Bool("hb", false, "refine with harmonic balance")
	csvOut := flag.String("csv", "", "write the PSS waveforms as CSV")
	ascii := flag.Bool("ascii", false, "plot node 0's PSS waveform")
	df = diag.AddFlags(flag.CommandLine)
	flag.Parse()
	if *deck == "" || *f0guess == "" {
		fmt.Fprintln(os.Stderr, "phlogon-pss: -deck and -f0 are required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, err := df.Start(context.Background())
	if err != nil {
		fatal(err)
	}
	defer df.Stop()
	src, err := os.ReadFile(*deck)
	if err != nil {
		fatal(err)
	}
	ckt, err := netlist.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	sys, err := ckt.Assemble()
	if err != nil {
		fatal(err)
	}
	f0, err := netlist.ParseValue(*f0guess)
	if err != nil {
		fatal(err)
	}
	x0 := linalg.NewVec(sys.N)
	for i := range x0 {
		x0[i] = 1.5 + 1.2*float64(i%3-1)
	}
	sol, err := pss.ShootAutonomousCtx(ctx, sys, x0, pss.Options{GuessT: 1 / f0, StepsPerPeriod: 1024})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("PSS: f0 = %.6g Hz, T0 = %.6g s, residual %.3g V after %d Newton iterations\n",
		sol.F0, sol.T0, sol.Residual, sol.Iterations)
	fmt.Println("Floquet multipliers:")
	for _, m := range sol.Multipliers {
		fmt.Printf("  %.6g %+.6gi   |µ| = %.6g\n", real(m), imag(m), cmplx.Abs(m))
	}
	_, largest, stable := sol.StabilityReport()
	fmt.Printf("orbital stability: %v (largest non-trivial |µ| = %.4g)\n", stable, largest)
	for n := 0; n < sys.N; n++ {
		s := sol.NodeSeries(n, 16)
		fmt.Printf("node %-8s fundamental %.4g V, THD %.3g, peak at %.4f cycles\n",
			ckt.NodeName(n), 2*s.Magnitude(1), s.THD(), s.PeakPosition())
	}
	if *hb {
		hbsol := pss.HBFromSolution(sys, sol, 20)
		if err := pss.RefineHBCtx(ctx, sys, hbsol, 12, 1e-10); err != nil {
			fatal(err)
		}
		fmt.Printf("HB refinement: f0 = %.8g Hz, residual %.3g A\n", hbsol.F0, hbsol.Residual)
	}
	if *ascii {
		s := sol.NodeSeries(0, 32)
		n := 160
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i) / float64(n-1)
			y[i] = s.Eval(x[i])
		}
		ch := plot.New(fmt.Sprintf("PSS of %s", ckt.NodeName(0)), "t/T0", "V")
		ch.Add(ckt.NodeName(0), x, y)
		fmt.Println(ch.ASCII(90, 18))
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cols := map[string][]float64{}
		var names []string
		for n := 0; n < sys.N; n++ {
			name := ckt.NodeName(n)
			names = append(names, name)
			col := make([]float64, len(sol.Grid))
			for i := range sol.Grid {
				col[i] = sol.States[i][n]
			}
			cols[name] = col
		}
		if err := wave.MultiCSV(f, sol.Grid, cols, names); err != nil {
			fatal(err)
		}
		fmt.Printf("PSS waveforms written to %s\n", *csvOut)
	}
}

// df is package-level so fatal can flush profiles/metrics before exiting.
var df *diag.Flags

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phlogon-pss:", err)
	if df != nil {
		df.Stop()
	}
	os.Exit(1)
}
