package main_test

import (
	"path/filepath"
	"testing"

	"repro/internal/cmdtest"
)

func TestMissingFlagsExit2(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-pss")
	for _, args := range [][]string{
		nil,                   // no flags at all
		{"-f0", "9.6k"},       // deck missing
		{"-deck", "nope.cir"}, // f0 missing
	} {
		res := cmdtest.Run(t, bin, "", args...)
		if res.ExitCode != 2 {
			t.Errorf("args %v: exit %d, want 2\nstderr: %s", args, res.ExitCode, res.Stderr)
		}
	}
}

func TestUnreadableDeckExit1(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-pss")
	res := cmdtest.Run(t, bin, "", "-deck", "does-not-exist.cir", "-f0", "9.6k")
	if res.ExitCode != 1 {
		t.Errorf("exit %d, want 1\nstderr: %s", res.ExitCode, res.Stderr)
	}
}

func TestRingDeckRun(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-pss")
	deck := cmdtest.WriteRingDeck(t)
	res := cmdtest.Run(t, bin, "", "-deck", deck, "-f0", "9.6k")
	if res.ExitCode != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", res.ExitCode, res.Stdout, res.Stderr)
	}
	cmdtest.MustContain(t, res.Stdout,
		"PSS: f0 =", "Floquet multipliers:", "orbital stability:")
}

func TestHBAndCSVOutputs(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-pss")
	deck := cmdtest.WriteRingDeck(t)
	dir := filepath.Dir(deck)
	res := cmdtest.Run(t, bin, dir, "-deck", deck, "-f0", "9.6k",
		"-hb", "-csv", "pss.csv")
	if res.ExitCode != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", res.ExitCode, res.Stdout, res.Stderr)
	}
	cmdtest.MustContain(t, res.Stdout, "HB refinement:", "PSS waveforms written to")
	cmdtest.MustExist(t, filepath.Join(dir, "pss.csv"))
}
