package main_test

import (
	"path/filepath"
	"testing"

	"repro/internal/cmdtest"
)

func TestMissingFlagsExit2(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-ppv")
	for _, args := range [][]string{
		nil,
		{"-f0", "9.6k"},
		{"-deck", "nope.cir"},
	} {
		res := cmdtest.Run(t, bin, "", args...)
		if res.ExitCode != 2 {
			t.Errorf("args %v: exit %d, want 2\nstderr: %s", args, res.ExitCode, res.Stderr)
		}
	}
}

func TestRingDeckRun(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-ppv")
	deck := cmdtest.WriteRingDeck(t)
	dir := filepath.Dir(deck)
	res := cmdtest.Run(t, bin, dir, "-deck", deck, "-f0", "9.6k",
		"-harms", "3", "-csv", "ppv.csv")
	if res.ExitCode != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", res.ExitCode, res.Stdout, res.Stderr)
	}
	cmdtest.MustContain(t, res.Stdout,
		"PSS: f0 =", "PPV: periodicity error", "PPV harmonics",
		"PPV waveforms written to")
	cmdtest.MustExist(t, filepath.Join(dir, "ppv.csv"))
}
