// Command phlogon-ppv extracts a PPV phase macromodel from an oscillator
// netlist: it finds the periodic steady state by shooting, runs the
// time-domain adjoint extraction, optionally cross-checks with the
// frequency-domain PPV-HB path, and prints the per-node harmonic table the
// GAE analyses consume.
//
// Usage:
//
//	phlogon-ppv -deck ring.cir -f0 9.6k [-node n1] [-hb] [-harms 8]
//	            [-kick n1=2.7,n2=0.3,n3=1.5] [-csv ppv.csv] [-workers n]
//	            [-metrics|-metrics-json] [-cpuprofile f] [-memprofile f]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/cmplx"
	"os"
	"strings"

	"repro/internal/diag"
	"repro/internal/linalg"
	"repro/internal/netlist"
	"repro/internal/ppv"
	"repro/internal/pss"
	"repro/internal/wave"
)

func main() {
	deck := flag.String("deck", "", "netlist file (required)")
	f0guess := flag.String("f0", "", "free-running frequency guess (required, SPICE units)")
	node := flag.String("node", "", "node whose PPV harmonics to print (default: all)")
	hb := flag.Bool("hb", false, "also extract via harmonic balance (PPV-HB) and compare")
	harms := flag.Int("harms", 8, "harmonics to print")
	kick := flag.String("kick", "", "initial state node=V,... (default: staggered kick)")
	csvOut := flag.String("csv", "", "write the PPV waveforms as CSV")
	workers := flag.Int("workers", 0, "adjoint-extraction worker pool size (0 = NumCPU)")
	df = diag.AddFlags(flag.CommandLine)
	flag.Parse()

	if *deck == "" || *f0guess == "" {
		fmt.Fprintln(os.Stderr, "phlogon-ppv: -deck and -f0 are required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, err := df.Start(context.Background())
	if err != nil {
		fatal(err)
	}
	defer df.Stop()
	src, err := os.ReadFile(*deck)
	if err != nil {
		fatal(err)
	}
	ckt, err := netlist.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	sys, err := ckt.Assemble()
	if err != nil {
		fatal(err)
	}
	f0, err := netlist.ParseValue(*f0guess)
	if err != nil {
		fatal(err)
	}
	x0 := linalg.NewVec(sys.N)
	if *kick == "" {
		for i := range x0 {
			x0[i] = 1.5 + 1.2*float64(i%3-1) // staggered around mid-rail
		}
	} else {
		for _, kv := range strings.Split(*kick, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad -kick entry %q", kv))
			}
			idx := ckt.NodeIndex(strings.TrimSpace(parts[0]))
			if idx < 0 {
				fatal(fmt.Errorf("-kick: unknown node %q", parts[0]))
			}
			v, err := netlist.ParseValue(parts[1])
			if err != nil {
				fatal(err)
			}
			x0[idx] = v
		}
	}

	sol, err := pss.ShootAutonomousCtx(ctx, sys, x0, pss.Options{GuessT: 1 / f0, StepsPerPeriod: 1024})
	if err != nil {
		fatal(err)
	}
	trivial, largest, stable := sol.StabilityReport()
	fmt.Printf("PSS: f0 = %.6g Hz (T0 = %.6g s), residual %.3g V, %d Newton iterations\n",
		sol.F0, sol.T0, sol.Residual, sol.Iterations)
	fmt.Printf("Floquet: trivial multiplier %.6g%+.3gi, largest other |µ| = %.4g (orbitally stable: %v)\n",
		real(trivial), imag(trivial), largest, stable)

	p, err := ppv.FromSolutionCtx(ctx, sys, sol, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("PPV: periodicity error %.3g, normalization spread %.3g\n\n",
		p.PeriodicityError(), p.NormError)

	printNode := func(idx int) {
		fmt.Printf("node %s — PPV harmonics (current injection → dα/dt):\n", ckt.NodeName(idx))
		fmt.Printf("  %3s %14s %14s\n", "m", "|V_m| [1/(A·s)]", "∠V_m [cycles]")
		for m := 0; m <= *harms; m++ {
			cm := p.Harmonic(idx, m)
			fmt.Printf("  %3d %14.5g %14.5g\n", m, cmplx.Abs(cm), cmplx.Phase(cm)/(2*3.141592653589793))
		}
	}
	if *node != "" {
		idx := ckt.NodeIndex(*node)
		if idx < 0 {
			fatal(fmt.Errorf("unknown node %q", *node))
		}
		printNode(idx)
	} else {
		for i := 0; i < sys.N; i++ {
			printNode(i)
		}
	}

	if *hb {
		hbsol := pss.HBFromSolution(sys, sol, 20)
		if err := pss.RefineHBCtx(ctx, sys, hbsol, 12, 1e-10); err != nil {
			fatal(fmt.Errorf("HB refinement: %w", err))
		}
		fmt.Printf("\nHB: refined f0 = %.6g Hz, residual %.3g A\n", hbsol.F0, hbsol.Residual)
		coefs, err := hbsol.PPVHB()
		if err != nil {
			fatal(err)
		}
		fd := ppv.FromHBCoefficients(sol, coefs)
		fmt.Println("PPV-HB vs time-domain (node 0, first 4 harmonics):")
		for m := 0; m <= 3; m++ {
			a, b := p.Harmonic(0, m), fd.Harmonic(0, m)
			fmt.Printf("  m=%d  TD %.5g∠%.4g   HB %.5g∠%.4g   |Δ| %.3g\n",
				m, cmplx.Abs(a), cmplx.Phase(a), cmplx.Abs(b), cmplx.Phase(b), cmplx.Abs(a-b))
		}
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cols := map[string][]float64{}
		var names []string
		ts := make([]float64, 257)
		for i := range ts {
			ts[i] = sol.T0 * float64(i) / 256
		}
		for n := 0; n < sys.N; n++ {
			name := "ppv_" + ckt.NodeName(n)
			names = append(names, name)
			col := make([]float64, len(ts))
			for i, tt := range ts {
				col[i] = p.At(n, tt)
			}
			cols[name] = col
		}
		if err := wave.MultiCSV(f, ts, cols, names); err != nil {
			fatal(err)
		}
		fmt.Printf("\nPPV waveforms written to %s\n", *csvOut)
	}
}

// df is package-level so fatal can flush profiles/metrics before exiting.
var df *diag.Flags

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phlogon-ppv:", err)
	if df != nil {
		df.Stop()
	}
	os.Exit(1)
}
