package main_test

import (
	"testing"

	"repro/internal/cmdtest"
)

func TestBadSubcommandExit2(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-char")
	for _, args := range [][]string{nil, {"bogus"}} {
		res := cmdtest.Run(t, bin, "", args...)
		if res.ExitCode != 2 {
			t.Errorf("args %v: exit %d, want 2\nstderr: %s", args, res.ExitCode, res.Stderr)
		}
	}
}

func TestNoiseSubcommand(t *testing.T) {
	bin := cmdtest.Build(t, "./cmd/phlogon-char")
	res := cmdtest.Run(t, bin, "", "noise", "-runs", "1")
	if res.ExitCode != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", res.ExitCode, res.Stdout, res.Stderr)
	}
	cmdtest.MustContain(t, res.Stdout, "f0 =", "SHIL lock stiffness")
}
