// Command phlogon-char characterizes a ring-oscillator latch design beyond
// the nominal point: phase noise metrics and SHIL noise immunity (package
// noise), and process-variability sensitivities / Monte-Carlo corners
// (package variation).
//
// Usage:
//
//	phlogon-char noise [-sync 100u] [-d 5e-3] [-runs 6] [-2n1p] [-workers n]
//	phlogon-char sens  [-2n1p] [-workers n]
//	phlogon-char mc    [-n 25] [-seed 1] [-sampler pseudo|sobol] [-batch] [-lanes 8] [-2n1p] [-workers n]
//	phlogon-char yield [-n 25] [-seed 1] [-sampler pseudo|sobol] [-lanes 8] [-d 5e-3] [-ber 1e-2] [-batch 64] [-scalar] [-2n1p] [-workers n]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/gae"
	"repro/internal/netlist"
	"repro/internal/noise"
	"repro/internal/phasemacro"
	"repro/internal/ringosc"
	"repro/internal/variation"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	syncAmp := fs.String("sync", "100u", "SYNC amplitude for the locked-latch studies")
	dStr := fs.Float64("d", 5e-3, "Δφ diffusion for the stochastic study, cycles²/s")
	use2n1p := fs.Bool("2n1p", false, "use the 2N1P ring")
	nMC := fs.Int("n", 25, "Monte-Carlo samples")
	seed := fs.Int64("seed", 1, "Monte-Carlo / ensemble seed")
	runs := fs.Int("runs", 6, "noise: stochastic ensemble members")
	samplerName := fs.String("sampler", "pseudo", "mc/yield: corner sampler (pseudo|sobol)")
	// -batch is subcommand-specific: mc switches the corner PSS pipeline,
	// yield sizes the stochastic SoA lane width.
	var useBatch *bool
	var berLanes *int
	var berScalar *bool
	if cmd == "yield" {
		berLanes = fs.Int("batch", noise.DefaultEnsembleLanes, "yield: stochastic SoA lane width per ensemble batch")
		berScalar = fs.Bool("scalar", false, "yield: use the scalar (pre-batching) stochastic pipeline")
	} else {
		useBatch = fs.Bool("batch", false, "mc: evaluate corners through the batched PSS path")
	}
	lanes := fs.Int("lanes", variation.DefaultBatchLanes, "mc/yield: corners per batched PSS solve")
	berTarget := fs.Float64("ber", 1e-2, "yield: acceptable BER per corner")
	workers := fs.Int("workers", 0, "worker pool size (0 = NumCPU)")
	df = diag.AddFlags(fs)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, err := df.Start(sigCtx)
	if err != nil {
		fatal(err)
	}
	defer df.Stop()
	cfg := ringosc.DefaultConfig()
	if *use2n1p {
		cfg = ringosc.Config2N1P()
	}

	switch cmd {
	case "noise":
		sv, err := netlist.ParseValue(*syncAmp)
		if err != nil {
			fatal(err)
		}
		eng := engine.New(engine.Options{Workers: *workers})
		_, sol, p, err := eng.RingPPV(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		cal, err := phasemacro.Calibrate(&phasemacro.Latch{P: p, Node: 0, Out: 0}, 10e3)
		if err != nil {
			fatal(err)
		}
		src := []noise.Source{{Node: 0, PSD: noise.ThermalCurrentPSD(1e3, 300)}}
		fmt.Printf("f0 = %.5g Hz\n", sol.F0)
		fmt.Printf("thermal (1 kΩ @ 300 K) phase diffusion c = %.3g s²/s\n", noise.AlphaDiffusion(p, src))
		fmt.Printf("Lorentzian linewidth = %.3g Hz, RMS jitter/cycle = %.3g s\n",
			noise.Linewidth(p, src), noise.JitterPerCycle(p, src))
		locked := gae.NewModel(p, sol.F0,
			gae.Injection{Name: "SYNC", Node: 0, Amp: sv, Harmonic: 2, Phase: cal.SyncPhase})
		lam := noise.LockStiffness(locked, 0)
		fmt.Printf("\nSHIL lock stiffness λ = %.4g 1/s at SYNC = %s\n", lam, *syncAmp)
		fmt.Printf("confinement variance at D=%g: predicted %.3g cycles²\n",
			*dStr, noise.ConfinementVariance(locked, 0, *dStr))
		ens, err := noise.StochasticEnsemble(ctx, locked, 0, *dStr, 0, 1, 1e-4, *seed, *runs, *workers)
		if err != nil {
			fatal(err)
		}
		hops := 0
		for _, res := range ens {
			hops += res.Hops
		}
		fmt.Printf("stochastic check: %d basin hops over %d s of simulated operation\n", hops, *runs)
	case "sens":
		sens, err := variation.SensitivitiesEng(ctx, variation.NewEngine(*workers), cfg, variation.StandardParams(), *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s %12s %12s %12s %12s   (relative change per +1σ)\n",
			"param", "f0", "|V1|", "|V2|", "lock width")
		for _, s := range sens {
			fmt.Printf("%-8s %12.4g %12.4g %12.4g %12.4g\n", s.Param, s.DF0, s.DV1, s.DV2, s.DLockWidth)
		}
	case "mc":
		veng := variation.NewEngine(*workers)
		params := variation.StandardParams()
		smp := newSampler(*samplerName, len(params), *seed)
		var samples []variation.Sample
		var err error
		if *useBatch {
			samples, _, err = variation.MonteCarloBatchEng(ctx, veng, cfg, params, *nMC, smp, *lanes, *workers)
		} else {
			samples, err = variation.MonteCarloSampledEng(ctx, veng, cfg, params, *nMC, smp, *workers)
		}
		if err != nil {
			fatal(err)
		}
		st := variation.Summarize(samples)
		fmt.Printf("%d Monte-Carlo samples (seed %d, %s sampler%s):\n",
			len(samples), *seed, smp.Name(), map[bool]string{true: ", batched", false: ""}[*useBatch])
		fmt.Printf("  f0:         mean %.5g Hz, rel. std %.3g\n", st.MeanF0, st.RelStdF0)
		fmt.Printf("  lock width: mean %.4g Hz, rel. std %.3g (SYNC 100 µA)\n", st.MeanLockWidth, st.RelStdLockWidth)
		fmt.Printf("  |V2|:       mean %.4g,    rel. std %.3g\n", st.MeanV2, st.RelStdV2)
		nom, err := variation.EvaluateEng(ctx, veng, cfg)
		if err != nil {
			fatal(err)
		}
		worst, req := variation.WorstCaseDetuning(samples, nom.F0, nom.V2)
		fmt.Printf("  worst-case |f0 − f1|: %.4g Hz → SYNC ≥ %.4g µA locks every sampled corner\n",
			worst, req*1e6)
	case "yield":
		// Parametric BER yield: sample process corners, evaluate them through
		// the batched PSS pipeline, then count Kramers hops of each corner's
		// SHIL-locked latch under phase diffusion D. A corner passes when its
		// hop-counting BER stays at or below the target.
		veng := variation.NewEngine(*workers)
		params := variation.StandardParams()
		smp := newSampler(*samplerName, len(params), *seed)
		_, corners, err := variation.MonteCarloBatchEng(ctx, veng, cfg, params, *nMC, smp, *lanes, *workers)
		if err != nil {
			fatal(err)
		}
		// Always collect metrics for this phase: the lane-occupancy report
		// below needs the stochastic-batch counters even when -metrics is off.
		met := diag.FromContext(ctx)
		if met == nil {
			met = diag.New()
			ctx = diag.WithMetrics(ctx, met)
		}
		opt := noise.BEROptions{TBit: 0.05, Bits: 20, Members: *runs, Dt: 1e-4, Seed: *seed,
			Workers: *workers, Scalar: *berScalar, Lanes: *berLanes}
		results, err := variation.CornerBERs(ctx, corners, *dStr, opt)
		if err != nil {
			fatal(err)
		}
		bers := make([]float64, len(results))
		worst := 0.0
		for i, res := range results {
			bers[i] = res.BER
			if res.BER > worst {
				worst = res.BER
			}
		}
		y := noise.Yield(bers, *berTarget)
		fmt.Printf("%d corners (seed %d, %s sampler), D = %g cycles²/s, %d bit-slots each:\n",
			len(corners), *seed, smp.Name(), *dStr, opt.Members*opt.Bits)
		fmt.Printf("  worst corner BER %.3g, target %.3g\n", worst, *berTarget)
		fmt.Printf("  parametric yield: %.1f %% of corners meet the BER target\n", 100*y)
		if sw := met.Get(diag.StochBatchSteps); sw > 0 {
			fmt.Printf("  stochastic lanes: %d SoA sweeps, mean occupancy %.1f of %d lanes, %d compiled g(Δφ) kernels\n",
				sw, float64(met.Get(diag.StochBatchLaneSteps))/float64(sw), *berLanes,
				met.Get(diag.CompiledGCompiles))
		} else if *berScalar {
			fmt.Printf("  stochastic lanes: scalar pipeline (batching disabled)\n")
		}
	default:
		usage()
	}
}

// newSampler resolves the -sampler flag for the given parameter count.
func newSampler(name string, nParams int, seed int64) variation.Sampler {
	switch name {
	case "pseudo":
		return variation.PseudoSampler{Seed: seed}
	case "sobol":
		s, err := variation.NewSobolSampler(nParams, seed)
		if err != nil {
			fatal(err)
		}
		return s
	default:
		fatal(fmt.Errorf("unknown sampler %q (want pseudo or sobol)", name))
		return nil
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: phlogon-char {noise|sens|mc|yield} [flags]")
	os.Exit(2)
}

// df is package-level so fatal can flush profiles/metrics before exiting.
var df *diag.Flags

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phlogon-char:", err)
	if df != nil {
		df.Stop()
	}
	os.Exit(1)
}
