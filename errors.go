package phlogon

import (
	"repro/internal/gae"
	"repro/internal/linalg"
	"repro/internal/phlogic"
	"repro/internal/solver"
	"repro/internal/transient"
)

// The public error taxonomy. Every analysis failure surfaced by this library
// wraps one of these sentinels, so callers branch with errors.Is instead of
// matching message strings:
//
//	if errors.Is(err, phlogon.ErrNoConvergence) { relax tolerances / improve the guess }
//	if errors.Is(err, phlogon.ErrNoLock)        { increase injection amplitude }
//
// The variables alias the internal sentinels, so errors.Is matches wrap
// chains built anywhere in the library.
var (
	// ErrNoConvergence: a Newton-type iteration (DC, transient corrector,
	// shooting, harmonic balance) stalled before reaching tolerance.
	ErrNoConvergence = solver.ErrNoConvergence

	// ErrSingularJacobian: a linear solve met a matrix that is singular to
	// working precision (floating islands, a degenerate bordered system).
	ErrSingularJacobian = linalg.ErrSingular

	// ErrNoLock: a GAE analysis required an injection lock that does not
	// exist (injection too weak or detuning too large).
	ErrNoLock = gae.ErrNoLock

	// ErrUnsupported: the requested option combination is not implemented
	// (e.g. Gear2 with adaptive stepping).
	ErrUnsupported = transient.ErrUnsupported

	// ErrInvalidNetlist: a phase-logic IR document is structurally invalid
	// (unknown gate kind, undriven or multiply-driven net, malformed
	// weights, combinational cycle).
	ErrInvalidNetlist = phlogic.ErrInvalidNetlist

	// ErrUndecodable: a compiled phase-logic network's output could not be
	// read back into a logic level (signal too small or too close to the
	// quadrature decision boundary).
	ErrUndecodable = phlogic.ErrUndecodable
)
