// Benchmark harness: one benchmark per evaluation figure of the paper (see
// DESIGN.md's per-experiment index) plus the efficiency comparison the paper
// claims in Secs. 2/4.3 and ablation benches for the design choices called
// out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package phlogon_test

import (
	"context"
	"errors"
	"fmt"
	"math/cmplx"
	"testing"

	phlogon "repro"
	"repro/internal/figs"
	"repro/internal/gae"
	"repro/internal/linalg"
	"repro/internal/noise"
	"repro/internal/phasemacro"
	"repro/internal/phlogic"
	"repro/internal/ppv"
	"repro/internal/pss"
	"repro/internal/ringosc"
	"repro/internal/solver"
	"repro/internal/transient"
	"repro/internal/variation"
)

// shared context: PSS + PPV extraction happens once, figures re-run per
// iteration (the figure computation is what each bench measures).
var benchCtx = figs.New("")

func benchFig(b *testing.B, fn func() (*figs.Result, error)) {
	b.Helper()
	benchFigOn(b, benchCtx, fn)
}

func benchFigOn(b *testing.B, c *figs.Context, fn func() (*figs.Result, error)) {
	b.Helper()
	// Prime the shared PPVs outside the timed region.
	if _, _, _, err := c.Ring1(); err != nil {
		b.Fatal(err)
	}
	if _, _, _, err := c.Ring2(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig04PSS(b *testing.B)           { benchFig(b, benchCtx.Fig04) }
func BenchmarkFig05GAECurves(b *testing.B)     { benchFig(b, benchCtx.Fig05) }
func BenchmarkFig06PPVCompare(b *testing.B)    { benchFig(b, benchCtx.Fig06) }
func BenchmarkFig07LockingRange(b *testing.B)  { benchFig(b, benchCtx.Fig07) }
func BenchmarkFig08PhaseError(b *testing.B)    { benchFig(b, benchCtx.Fig08) }
func BenchmarkFig10DLatchCurves(b *testing.B)  { benchFig(b, benchCtx.Fig10) }
func BenchmarkFig11DSweep(b *testing.B)        { benchFig(b, benchCtx.Fig11) }
func BenchmarkFig12FlipTransient(b *testing.B) { benchFig(b, benchCtx.Fig12) }
func BenchmarkFig14SRLatch(b *testing.B)       { benchFig(b, benchCtx.Fig14) }
func BenchmarkFig16SerialAdder(b *testing.B)   { benchFig(b, benchCtx.Fig16) }
func BenchmarkFig17SpiceVsGAE(b *testing.B)    { benchFig(b, benchCtx.Fig17) }
func BenchmarkFig19FlipFlop(b *testing.B)      { benchFig(b, benchCtx.Fig19) }
func BenchmarkFig20AdderStates(b *testing.B)   { benchFig(b, benchCtx.Fig20) }

// --- Parallel-vs-serial variants: the same sweep-heavy workloads pinned to
// one worker vs one worker per CPU (the -workers flag's two endpoints). On a
// single-core host the two coincide; the serial-path savings show up in the
// base BenchmarkFig07LockingRange either way. ---

var (
	benchCtxW1 = func() *figs.Context { c := figs.New(""); c.Workers = 1; return c }()
	benchCtxWN = figs.New("") // Workers 0 → one per CPU
)

func BenchmarkFig07LockingRangeWorkers1(b *testing.B) { benchFigOn(b, benchCtxW1, benchCtxW1.Fig07) }
func BenchmarkFig07LockingRangeWorkersN(b *testing.B) { benchFigOn(b, benchCtxWN, benchCtxWN.Fig07) }

// benchEnsemble runs a 16-member stochastic Monte-Carlo ensemble of the
// SHIL-locked latch per iteration.
func benchEnsemble(b *testing.B, workers int) {
	b.Helper()
	_, sol, p := benchFixture(b)
	m := gae.NewModel(p, sol.F0, gae.Injection{Name: "SYNC", Node: 0, Amp: 100e-6, Harmonic: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := noise.StochasticEnsemble(context.Background(), m, 0, 1e-3, 0, 0.2, 1e-4, 7, 16, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoiseEnsembleWorkers1(b *testing.B) { benchEnsemble(b, 1) }
func BenchmarkNoiseEnsembleWorkersN(b *testing.B) { benchEnsemble(b, 0) }

// BenchmarkShootAutonomousRing is the instrumentation overhead guard: the
// full shooting solve on the paper's ring with diagnostics disabled (no
// metrics in the context). `make bench-overhead` holds it within 2% of
// BENCH_baseline.json; allocs/op must not grow at all (the disabled path is
// a nil check and must not allocate).
func BenchmarkShootAutonomousRing(b *testing.B) {
	r, err := ringosc.Build(ringosc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	x0 := r.KickStart()
	opt := pss.Options{GuessT: 1 / r.EstimatedF0(), StepsPerPeriod: 256, SettleCycles: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pss.ShootAutonomous(r.Sys, x0, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine memoization: the cold build→PSS→PPV pipeline against a warm
// cache hit on the same engine. `make bench-engine` compares both against
// BENCH_baseline.json; the warm path must stay a cache lookup (shared
// pointer return), orders of magnitude under the cold solve. ---

func BenchmarkEngineRingPPVCold(b *testing.B) {
	cfg := phlogon.DefaultRingConfig()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := phlogon.NewEngine(phlogon.EngineOptions{})
		if _, _, _, err := eng.RingPPV(ctx, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineRingPPVWarm(b *testing.B) {
	cfg := phlogon.DefaultRingConfig()
	ctx := context.Background()
	eng := phlogon.NewEngine(phlogon.EngineOptions{})
	if _, _, _, err := eng.RingPPV(ctx, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := eng.RingPPV(ctx, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Efficiency comparison (the paper's headline): identical physics
// through the SPICE-level engine and the phase-macromodel engines. ---

// benchFixture builds the shared latch PPV once.
func benchFixture(b *testing.B) (*ringosc.Ring, *pss.Solution, *ppv.PPV) {
	b.Helper()
	r, sol, p, err := benchCtx.Ring1()
	if err != nil {
		b.Fatal(err)
	}
	return r, sol, p
}

// BenchmarkEffSpiceTransientBitFlip: 140 reference cycles of the Fig. 9 D
// latch at SPICE level (trapezoidal, 512 steps/cycle).
func BenchmarkEffSpiceTransientBitFlip(b *testing.B) {
	_, sol, _ := benchFixture(b)
	f1 := sol.F0
	T1 := 1 / f1
	cfg := ringosc.DefaultLatchConfig(f1)
	cfg.SyncAmp = 120e-6
	cfg.DAmp = 150e-6
	cfg.DFlipTime = 40 * T1
	l, err := ringosc.BuildLatch(cfg)
	if err != nil {
		b.Fatal(err)
	}
	x0 := l.KickStart()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transient.Run(l.Sys, x0, 0, 140*T1, transient.Options{
			Method: transient.Trap, Step: T1 / 512,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEffPhaseMacroBitFlip: the same 140 cycles on the scalar GAE.
func BenchmarkEffPhaseMacroBitFlip(b *testing.B) {
	_, sol, p := benchFixture(b)
	f1 := sol.F0
	T1 := 1 / f1
	m := gae.NewModel(p, f1,
		gae.Injection{Name: "SYNC", Node: 0, Amp: 120e-6, Harmonic: 2},
		gae.Injection{Name: "D", Node: 0, Amp: 150e-6, Harmonic: 1, Phase: 0.1},
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transient(0.497, 0, 140*T1, T1)
	}
}

// BenchmarkEffSpiceTransientFSM: the full transistor/op-amp serial adder
// (two latch rings, majority gates, clocked coupling) adding 101 + 101 over
// 3 clock periods — the honest SPICE-level cost of the FSM scenario.
func BenchmarkEffSpiceTransientFSM(b *testing.B) {
	_, sol, p := benchFixture(b)
	latch := &phasemacro.Latch{P: p, Node: 0, Out: 0, SyncAmp: 120e-6}
	cal, err := phasemacro.Calibrate(latch, 10e3)
	if err != nil {
		b.Fatal(err)
	}
	cr, cc, inv, err := ringosc.CouplingFromCalibration(cal.Coupling, sol.F0)
	if err != nil {
		b.Fatal(err)
	}
	aBits := []bool{true, false, true}
	ac, err := ringosc.BuildSerialAdderCircuit(ringosc.AdderCircuitConfig{
		Ring: ringosc.DefaultConfig(), F1: sol.F0,
		SyncAmp: 120e-6, SyncPhase: cal.SyncPhase,
		InputAmp: cmplx.Abs(cal.OutPhasor0), OutAngle: cmplx.Phase(cal.OutPhasor0),
		CouplingR: cr, CouplingC: cc, Invert: inv,
		ClockCycles: 120, ABits: aBits, BBits: aBits,
	})
	if err != nil {
		b.Fatal(err)
	}
	T1 := 1 / sol.F0
	x0 := ac.InitialState(sol, false, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transient.Run(ac.Sys, x0, 0, 3*ac.ClockPeriod, transient.Options{
			Method: transient.Trap, Step: T1 / 256, Record: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEffPhaseMacroFSM: the full serial adder (3 clock periods = 300
// cycles) on phase macromodels.
func BenchmarkEffPhaseMacroFSM(b *testing.B) {
	_, _, p := benchFixture(b)
	aBits := []bool{true, false, true}
	sa, err := phlogic.NewSerialAdder(p, p.F0, aBits, aBits, phlogic.SerialAdderConfig{
		SyncAmp: 100e-6, ClockCycles: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sa.Run(3, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches for DESIGN.md's called-out choices. ---

// BenchmarkAblationTransientFixed vs ...Adaptive: LTE-adaptive stepping on
// the D-latch settle transient.
func BenchmarkAblationTransientFixed(b *testing.B) {
	_, sol, _ := benchFixture(b)
	T1 := 1 / sol.F0
	l, err := ringosc.BuildLatch(ringosc.DefaultLatchConfig(sol.F0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transient.Run(l.Sys, l.KickStart(), 0, 20*T1, transient.Options{
			Method: transient.Trap, Step: T1 / 512,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTransientAdaptive(b *testing.B) {
	_, sol, _ := benchFixture(b)
	T1 := 1 / sol.F0
	l, err := ringosc.BuildLatch(ringosc.DefaultLatchConfig(sol.F0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transient.Run(l.Sys, l.KickStart(), 0, 20*T1, transient.Options{
			Method: transient.Trap, Step: T1 / 512, Adaptive: true, LTETol: 1e-3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGAEAveraged vs ...NonAveraged: the averaged GAE against
// the unaveraged eq.-(13) phase model on the same flip.
func BenchmarkAblationGAEAveraged(b *testing.B) {
	_, sol, p := benchFixture(b)
	T1 := 1 / sol.F0
	m := gae.NewModel(p, sol.F0,
		gae.Injection{Node: 0, Amp: 120e-6, Harmonic: 2},
		gae.Injection{Node: 0, Amp: 150e-6, Harmonic: 1, Phase: 0.1},
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transient(0.3, 0, 200*T1, T1)
	}
}

func BenchmarkAblationGAENonAveraged(b *testing.B) {
	_, sol, p := benchFixture(b)
	T1 := 1 / sol.F0
	m := gae.NewModel(p, sol.F0,
		gae.Injection{Node: 0, Amp: 120e-6, Harmonic: 2},
		gae.Injection{Node: 0, Amp: 150e-6, Harmonic: 1, Phase: 0.1},
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TransientNonAveraged(0.3, 0, 200*T1, 64, nil)
	}
}

// BenchmarkAblationPPVTimeDomain vs ...PPVHB: the two extraction paths.
func BenchmarkAblationPPVTimeDomain(b *testing.B) {
	r, sol, _ := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ppv.FromSolution(r.Sys, sol); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPPVHB(b *testing.B) {
	r, sol, _ := benchFixture(b)
	hb := pss.HBFromSolution(r.Sys, sol, 16)
	if err := pss.RefineHB(r.Sys, hb, 12, 1e-10); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hb.PPVHB(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sparse-vs-dense backend scaling: coupled ring-oscillator arrays of
// 16/64/256 rings (48/192/768 free nodes) through the transient corrector
// and the shooting inner loop. Both backends integrate the identical step
// sequence (same method, same fixed step count), so time-per-op is a pure
// linear-algebra comparison at matched accuracy. `make bench-sparse` pins
// these into BENCH_baseline.json. ---

func benchArray(b *testing.B, nRings int) (*ringosc.Array, linalg.Vec, float64) {
	b.Helper()
	arr, err := ringosc.BuildArray(nRings)
	if err != nil {
		b.Fatal(err)
	}
	return arr, arr.KickStart(), 1 / arr.EstimatedF0()
}

func BenchmarkSparseVsDenseTransient(b *testing.B) {
	for _, nRings := range []int{16, 64, 256} {
		for _, bk := range []linalg.Backend{linalg.BackendDense, linalg.BackendSparse} {
			b.Run(fmt.Sprintf("N=%d/%s", nRings, bk), func(b *testing.B) {
				arr, x0, T := benchArray(b, nRings)
				sc := transient.NewScratch(arr.Sys)
				opt := transient.Options{
					Method: transient.Trap, Step: T / 64, Backend: bk,
				}
				ctx := context.Background()
				// Warm up outside the timer: symbolic analysis, pattern
				// capture and scratch growth are one-time per topology.
				if _, err := sc.Run(ctx, x0, 0, T/64, opt); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Eight fixed Trap steps per op.
					if _, err := sc.Run(ctx, x0, 0, T/8, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkSparseVsDenseShoot(b *testing.B) {
	for _, nRings := range []int{16, 64, 256} {
		for _, bk := range []linalg.Backend{linalg.BackendDense, linalg.BackendSparse} {
			b.Run(fmt.Sprintf("N=%d/%s", nRings, bk), func(b *testing.B) {
				arr, x0, T := benchArray(b, nRings)
				// One bordered-Newton outer iteration per op: coupled
				// identical rings carry near-unit Floquet multipliers, so
				// convergence is not the point here — the cost of one outer
				// iteration (monodromy propagation + bordered solve) is.
				opt := pss.Options{
					GuessT: T, StepsPerPeriod: 8, MaxIter: 1,
					SettleCycles: -1, Backend: bk,
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, err := pss.ShootAutonomous(arr.Sys, x0, opt)
					if err != nil && !errors.Is(err, solver.ErrNoConvergence) {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Batched-ensemble Monte Carlo: the same 16 seeded process corners
// through the scalar per-corner pipeline (one cold PSS→PPV→GAE chain per
// corner) and through the SoA batched pipeline (one nominal solve, then all
// corners warm-started in lockstep through circuit.Batch). Both run one
// worker so the comparison is pure per-corner cost, not parallelism. `make
// bench-batch` pins both into BENCH_baseline.json and holds the batched
// path's ≥5x advantage via `phlogon-benchdiff ratio`. ---

const benchMCSamples = 16

func BenchmarkVariationMCScalar(b *testing.B) {
	cfg := ringosc.DefaultConfig()
	params := variation.StandardParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := variation.MonteCarloCtx(context.Background(), cfg, params, benchMCSamples, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVariationMCBatched(b *testing.B) {
	cfg := ringosc.DefaultConfig()
	params := variation.StandardParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := variation.MonteCarloBatchEng(context.Background(), nil, cfg, params, benchMCSamples,
			variation.PseudoSampler{Seed: 1}, benchMCSamples, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Batched stochastic ensembles: a 64-member BER study of a six-injection
// SHIL latch (SYNC plus logic/clock/neighbor couplings — the folded CompiledG
// carries two harmonic stacks), 10,000 Euler–Maruyama steps per member. The
// scalar leg runs the pre-batching interpreted pipeline (per-step Harmonic
// pick-off, trajectory retention); the batched leg runs the compiled SoA
// lanes with in-loop hop counting. Both run one worker so the ratio is pure
// per-member cost; `make bench-noise` holds the batched path's ≥4x advantage
// via `phlogon-benchdiff ratio`. ---

func benchBERModel(b *testing.B) *gae.Model {
	_, sol, p := benchFixture(b)
	cal, err := phasemacro.Calibrate(&phasemacro.Latch{P: p, Node: 0, Out: 0}, 10e3)
	if err != nil {
		b.Fatal(err)
	}
	return gae.NewModel(p, sol.F0,
		gae.Injection{Name: "SYNC", Node: 0, Amp: 100e-6, Harmonic: 2, Phase: cal.SyncPhase},
		gae.Injection{Name: "D", Node: 0, Amp: 20e-6, Harmonic: 1, Phase: 0.10},
		gae.Injection{Name: "CLK", Node: 0, Amp: 15e-6, Harmonic: 1, Phase: 0.35},
		gae.Injection{Name: "NB1", Node: 0, Amp: 10e-6, Harmonic: 1, Phase: 0.62},
		gae.Injection{Name: "NB2", Node: 0, Amp: 8e-6, Harmonic: 2, Phase: 0.21},
		gae.Injection{Name: "NB3", Node: 0, Amp: 6e-6, Harmonic: 1, Phase: 0.80},
	)
}

func benchBER(b *testing.B, scalar bool) {
	m := benchBERModel(b)
	opt := noise.BEROptions{
		TBit: 0.05, Bits: 20, Members: 64, Dt: 1e-4, Seed: 1, Workers: 1, Scalar: scalar,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := noise.EstimateBER(context.Background(), m, 4e-3, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStochasticEnsembleScalar(b *testing.B)  { benchBER(b, true) }
func BenchmarkStochasticEnsembleBatched(b *testing.B) { benchBER(b, false) }

// BenchmarkFacadePipeline measures the whole designer flow through the
// public API (build → PSS → PPV).
func BenchmarkFacadePipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := phlogon.RingPPV(phlogon.DefaultRingConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
