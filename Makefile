GO ?= go

.PHONY: check fmt vet build test test-short race xval xval-update bench bench-baseline bench-compare bench-overhead bench-alloc bench-engine bench-sparse bench-batch bench-noise bench-serve lint-deprecated

# The tier-1+ gate (see ROADMAP.md): formatting, vet, build, the full test
# suite under the race detector, the cross-method conformance ledger, and
# the deprecated-API lint. CI and pre-commit both run this.
check: fmt vet lint-deprecated build race xval

# The pre-context wrappers in phlogon.go (FindPSS, ExtractPPV, RingPPV,
# RunTransient) exist for external compatibility only. Nothing inside the
# module — commands, internal packages, examples, or the facade itself — may
# call them; root-level tests are exempt because they deliberately pin the
# deprecated surface. The second grep catches unqualified calls in the root
# package (definition lines excluded; calls through other receivers such as
# Engine.RingPPV are not deprecated and do not match).
lint-deprecated:
	@out=$$(grep -rn --include='*.go' -E 'phlogon\.(FindPSS|ExtractPPV|RingPPV|RunTransient)\(' cmd internal examples 2>/dev/null; \
	grep -n -E '(^|[^.A-Za-z0-9_])(FindPSS|ExtractPPV|RingPPV|RunTransient)\(' *.go 2>/dev/null \
		| grep -v -E '^[^:]*_test\.go:' | grep -v -E '^[^:]*:[0-9]+:func '); \
	if [ -n "$$out" ]; then \
		echo "deprecated pre-context API used inside the module:"; echo "$$out"; exit 1; \
	fi

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast lane: skips the slow SPICE-level tests and examples (testing.Short).
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Cross-method conformance ledger (internal/xval): all four method-pair
# families plus the golden-trace baselines, raced. Exits non-zero on drift.
xval:
	$(GO) run -race ./cmd/phlogon-xval

# Regenerate the golden fixtures from the current engines (review the diff!).
xval-update:
	$(GO) run ./cmd/phlogon-xval -update

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Re-pin the benchmark baseline (BENCH_baseline.json). Uses -benchtime 1x
# like `make bench`, so numbers are directly comparable.
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | $(GO) run ./cmd/phlogon-benchdiff parse -o BENCH_baseline.json

# Compare a fresh benchmark run against the pinned baseline and report
# per-benchmark deltas (tolerance guards against CI noise).
bench-compare:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | $(GO) run ./cmd/phlogon-benchdiff compare -baseline BENCH_baseline.json

# Instrumentation overhead gate: the diagnostics-disabled shooting solve must
# stay within 2% time and 0% allocs of its pinned baseline. -count repeats
# fold to the per-name minimum in benchdiff parse/compare, which suppresses
# scheduler noise enough for a 2% gate to be meaningful.
bench-overhead:
	$(GO) test -run '^$$' -bench '^BenchmarkShootAutonomousRing$$' -benchtime 20x -count 8 . \
		| $(GO) run ./cmd/phlogon-benchdiff compare -baseline BENCH_baseline.json \
			-only '^BenchmarkShootAutonomousRing$$' -tol 0.02 -alloc-tol 0

# Allocation gate: the headline hot-path benchmarks must hold the
# zero-allocation transient plumbing — allocs/op is deterministic, so its
# tolerance is essentially zero, and B/op is gated alongside it. Timing is
# not this gate's job (bench-compare covers it), hence the wide -tol.
# EffPhaseMacroFSM pins the scratch-pinned phase-macromodel integrator
# (Result arrays only — 13 allocs/op, down from 9,652).
bench-alloc:
	$(GO) test -run '^$$' -bench '^Benchmark(EffSpiceTransientFSM|EffPhaseMacroFSM|Fig19FlipFlop|Fig20AdderStates|ShootAutonomousRing)$$' -benchtime 1x -count 2 -benchmem . \
		| $(GO) run ./cmd/phlogon-benchdiff compare -baseline BENCH_baseline.json \
			-only '^Benchmark(EffSpiceTransientFSM|EffPhaseMacroFSM|Fig19FlipFlop|Fig20AdderStates|ShootAutonomousRing)$$' \
			-tol 1.0 -alloc-tol 0.05 -bytes-tol 0.25

# Sparse-backend scaling gate: the coupled-array benchmarks (transient and
# shooting at 16/64/256 rings, dense vs sparse) against their pinned
# baselines. Absolute times are machine-bound, so the timing tolerance is
# wide; the allocation columns are deterministic and gate for real. Re-pin
# with `make bench-baseline` after intentional backend changes.
bench-sparse:
	$(GO) test -run '^$$' -bench '^BenchmarkSparseVsDense' -benchtime 1x . \
		| $(GO) run ./cmd/phlogon-benchdiff compare -baseline BENCH_baseline.json \
			-only '^BenchmarkSparseVsDense' -tol 1.0 -alloc-tol 0.05 -bytes-tol 0.25

# Engine memoization gate: the cold build→PSS→PPV pipeline and the warm
# cache hit against their pinned baselines. The warm path is the one that
# must not regress — it gates the Engine's whole value proposition (a cache
# hit must stay a map lookup, not drift back toward a recompute).
bench-engine:
	$(GO) test -run '^$$' -bench '^BenchmarkEngineRingPPV(Cold|Warm)$$' -benchtime 1x -count 6 . \
		| $(GO) run ./cmd/phlogon-benchdiff compare -baseline BENCH_baseline.json \
			-only '^BenchmarkEngineRingPPV' -tol 0.5

# Batched-ensemble gate: the scalar and batched Monte-Carlo benchmarks (the
# same 16 seeded corners through both pipelines) against their pinned
# baselines, plus the headline claim — the batched path must stay at least
# 5x faster than the scalar one. The ratio is taken within one run, so
# machine speed cancels out of it; both checks read the same run's output.
bench-batch:
	$(GO) test -run '^$$' -bench '^BenchmarkVariationMC(Scalar|Batched)$$' -benchtime 1x -count 2 -benchmem . > bench-batch.tmp
	$(GO) run ./cmd/phlogon-benchdiff compare -baseline BENCH_baseline.json \
		-only '^BenchmarkVariationMC(Scalar|Batched)$$' -tol 1.0 -alloc-tol 0.05 -bytes-tol 0.25 < bench-batch.tmp
	$(GO) run ./cmd/phlogon-benchdiff ratio \
		-num BenchmarkVariationMCScalar -den BenchmarkVariationMCBatched -min 5 < bench-batch.tmp
	rm -f bench-batch.tmp

# Stochastic-ensemble gate: the 64-member BER study through the scalar
# (interpreted, trajectory-retaining) and batched (compiled SoA lanes,
# in-loop hop counting) pipelines. The same-run ratio holds the batched
# path's ≥4x headline; the compare leg additionally pins both legs' absolute
# allocation profiles against the baseline.
bench-noise:
	$(GO) test -run '^$$' -bench '^BenchmarkStochasticEnsemble(Scalar|Batched)$$' -benchtime 2x -count 2 -benchmem . > bench-noise.tmp
	$(GO) run ./cmd/phlogon-benchdiff compare -baseline BENCH_baseline.json \
		-only '^BenchmarkStochasticEnsemble(Scalar|Batched)$$' -tol 1.0 -alloc-tol 0.05 -bytes-tol 0.25 < bench-noise.tmp
	$(GO) run ./cmd/phlogon-benchdiff ratio \
		-num BenchmarkStochasticEnsembleScalar -den BenchmarkStochasticEnsembleBatched -min 4 < bench-noise.tmp
	rm -f bench-noise.tmp

# HTTP service load gate: boots the real phlogon-serve binary with a disk
# store, completes 500+ concurrent mixed cold/warm requests with zero
# errors and bounded memory, requires a 10x warm-over-cold median, and
# proves warm state survives a process restart (first repeat served from
# disk with zero Newton iterations).
bench-serve:
	PHLOGON_BENCH_SERVE=1 $(GO) test -run '^TestBenchServe$$' -v -timeout 900s ./cmd/phlogon-serve
