GO ?= go

.PHONY: check fmt vet build test race bench

# The tier-1+ gate (see ROADMAP.md): formatting, vet, build, and the full
# test suite under the race detector. CI and pre-commit both run this.
check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
