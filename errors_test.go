package phlogon_test

import (
	"context"
	"errors"
	"testing"

	phlogon "repro"
	"repro/internal/gae"
	"repro/internal/linalg"
	"repro/internal/linalg/sparse"
	"repro/internal/pss"
	"repro/internal/ringosc"
	"repro/internal/transient"
)

// The taxonomy contract: every failure mode of the library wraps one of the
// four public sentinels, wherever in the stack it originates.

func TestErrNoConvergenceFromShooting(t *testing.T) {
	r, err := phlogon.BuildRing(phlogon.DefaultRingConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One Newton iteration at an unreachable tolerance must fail through the
	// public sentinel.
	_, err = pss.ShootAutonomous(r.Sys, r.KickStart(), pss.Options{
		GuessT: 1 / r.EstimatedF0(), StepsPerPeriod: 64, SettleCycles: 1,
		MaxIter: 1, Tol: 1e-30,
	})
	if err == nil {
		t.Fatal("one iteration at Tol=1e-30 converged?")
	}
	if !errors.Is(err, phlogon.ErrNoConvergence) {
		t.Fatalf("shooting failure does not wrap ErrNoConvergence: %v", err)
	}
}

func TestErrSingularJacobian(t *testing.T) {
	_, err := linalg.Factorize(linalg.NewMat(2, 2)) // the zero matrix
	if !errors.Is(err, phlogon.ErrSingularJacobian) {
		t.Fatalf("singular LU does not wrap ErrSingularJacobian: %v", err)
	}
}

// The sparse backend must surface the same public sentinel as the dense one:
// one taxonomy, two factorizations.
func TestErrSingularJacobianSparse(t *testing.T) {
	// 2×2 with exactly dependent rows.
	m := sparse.NewCSC(sparse.PatternFromEntries(2, []int{0, 0, 1, 1}, []int{0, 1, 0, 1}))
	m.Val[0], m.Val[1], m.Val[2], m.Val[3] = 1, 1, 2, 2
	if _, err := sparse.Factorize(m); !errors.Is(err, phlogon.ErrSingularJacobian) {
		t.Fatalf("singular sparse LU does not wrap ErrSingularJacobian: %v", err)
	}
}

func TestErrNoLock(t *testing.T) {
	eng := phlogon.NewEngine(phlogon.EngineOptions{
		PSS: phlogon.PSSOptions{StepsPerPeriod: 256, SettleCycles: 10},
	})
	_, _, p, err := eng.RingPPV(context.Background(), ringosc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A vanishing SYNC drive cannot overcome a 1% detuning.
	m := gae.NewModel(p, 1.01*p.F0, gae.Injection{Node: 0, Amp: 1e-15, Harmonic: 2})
	if _, _, err := m.SHILPhases(); !errors.Is(err, phlogon.ErrNoLock) {
		t.Fatalf("lockless SHIL does not wrap ErrNoLock: %v", err)
	}
}

func TestErrUnsupported(t *testing.T) {
	r, err := phlogon.BuildRing(phlogon.DefaultRingConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = phlogon.RunTransientCtx(context.Background(), r.Sys, r.KickStart(),
		0, 1e-3, phlogon.TransientOptions{Method: transient.Gear2, Adaptive: true, Step: 1e-6})
	if !errors.Is(err, phlogon.ErrUnsupported) {
		t.Fatalf("Gear2+Adaptive does not wrap ErrUnsupported: %v", err)
	}
	if !errors.Is(err, transient.ErrGear2Adaptive) {
		t.Fatalf("specific sentinel lost from the chain: %v", err)
	}
}
