package phlogon

import (
	"repro/internal/engine"
	"repro/internal/gae"
	"repro/internal/pss"
)

// Engine is the memoizing analysis engine: a concurrency-safe,
// content-addressed cache of the expensive pipeline artifacts (periodic
// steady states and PPV macromodels) with singleflight deduplication — N
// concurrent requests for the same artifact trigger exactly one
// computation — a byte-accounted LRU, and a bounded compute pool. Cached
// artifacts are shared immutable pointers: do not mutate what an Engine
// returns.
//
// One Engine should outlive many analyses; every designer flow that touches
// the same oscillator family then pays for one extraction.
//
// Beyond the ring-specific RingPSS/RingPPV helpers, an Engine memoizes any
// phlogon.Oscillator through its generic PSS and PPV methods — the cache
// key folds in the oscillator's kind tag and configuration, so distinct
// substrates never collide and equal configurations share one artifact.
type Engine = engine.Engine

// EngineOptions configures NewEngine. The zero value is a good default:
// a 256 MiB cache, one compute slot per CPU, and the facade's standard
// PSS options (1024 steps per period).
type EngineOptions = engine.Options

// EngineStats is a point-in-time snapshot of an Engine's cache behaviour.
type EngineStats = engine.Stats

// DiskStore is the persistent tier of the engine's content-addressed cache:
// artifact files named by the same SHA-256 fingerprints that key the
// in-memory LRU, so a warm cache survives restarts and can be shared
// between replicas (see EngineOptions.Disk).
type DiskStore = engine.DiskStore

// PSSOptions tunes the shooting solver (EngineOptions.PSS and the pss
// package's entry points).
type PSSOptions = pss.Options

// GAESweepRequest asks Engine.GAESweepBatch for a SYNC-amplitude locking
// sweep on one ring configuration.
type GAESweepRequest = engine.GAESweepRequest

// GAESweepResult is one GAESweepRequest's outcome.
type GAESweepResult = engine.GAESweepResult

// LockPoint is one point of a locking-range sweep.
type LockPoint = gae.LockPoint

// NewEngine returns an empty memoizing analysis engine.
func NewEngine(opt EngineOptions) *Engine { return engine.New(opt) }

// OpenDiskStore opens (creating if needed) a disk artifact store rooted at
// dir, for use as an Engine's persistent cache tier.
func OpenDiskStore(dir string) (*DiskStore, error) { return engine.OpenDiskStore(dir) }
