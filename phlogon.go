// Package phlogon is the public facade of the PHLOGON design-tool library —
// a from-scratch Go reproduction of Wang & Roychowdhury, "Design Tools for
// Oscillator-based Computing Systems" (DAC 2015).
//
// The library covers every stage of phase-logic system design:
//
//   - SPICE-level circuit modelling and transient simulation of the
//     oscillator latches (packages circuit, device, solver, transient);
//   - periodic steady-state analysis by shooting and harmonic balance
//     (package pss);
//   - PPV phase-macromodel extraction, time-domain and PPV-HB (package ppv);
//   - Generalized Adlerization: lock prediction, locking range, locking
//     phase error, bit-flip transients (package gae);
//   - full-system phase-macromodel simulation of phase-logic FSMs
//     (packages phasemacro, phlogic);
//   - the paper's concrete vehicles (package ringosc) and figure
//     regeneration (package figs, cmd/phlogon-figs).
//
// A typical designer flow goes through an Engine, which memoizes the
// expensive PSS and PPV artifacts so every downstream analysis of the same
// oscillator reuses one extraction:
//
//	eng := phlogon.NewEngine(phlogon.EngineOptions{})
//	ring, sol, p, _ := eng.RingPPV(ctx, phlogon.DefaultRingConfig())
//	m := phlogon.NewGAE(p, 9.6e3,
//	    phlogon.Injection{Node: 0, Amp: 100e-6, Harmonic: 2}) // SYNC at 2·f1
//	locks := m.StableEquilibria()                        // the stored bit's phases
//	_ = ring
//	_ = sol
//
// Every analysis entry point takes a context.Context first (cancellation,
// deadlines, and diagnostics attribution flow through it); the ctx-less
// names remain as deprecated wrappers over context.Background().
package phlogon

import (
	"context"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/gae"
	"repro/internal/netlist"
	"repro/internal/phasemacro"
	"repro/internal/phlogic"
	"repro/internal/ppv"
	"repro/internal/pss"
	"repro/internal/ringosc"
	"repro/internal/transient"
)

// Re-exported core types. These aliases are the supported public API; the
// internal packages remain free to grow details behind them.
type (
	// Circuit is a netlist of nodes and devices.
	Circuit = circuit.Circuit
	// System is an assembled circuit in ODE form.
	System = circuit.System
	// NodeID identifies a circuit node.
	NodeID = circuit.NodeID
	// PSS is a converged periodic steady state.
	PSS = pss.Solution
	// PPV is an extracted phase macromodel.
	PPV = ppv.PPV
	// GAE is a Generalized Adler Equation model.
	GAE = gae.Model
	// Injection is a sinusoidal current injection for GAE analyses.
	Injection = gae.Injection
	// Equilibrium is a lock solution of the GAE.
	Equilibrium = gae.Equilibrium
	// Ring is the paper's ring-oscillator vehicle.
	Ring = ringosc.Ring
	// RingConfig parameterizes the ring oscillator.
	RingConfig = ringosc.Config
	// DLatch is the Fig. 9 level-enabled D latch circuit.
	DLatch = ringosc.Latch
	// DLatchConfig parameterizes the D latch.
	DLatchConfig = ringosc.LatchConfig
	// PhaseSystem is a coupled multi-latch phase-macromodel system.
	PhaseSystem = phasemacro.System
	// SerialAdder is the Fig. 15 FSM on phase macromodels.
	SerialAdder = phlogic.SerialAdder
	// Netlist is the phase-logic compiler's IR: a combinational/FSM block
	// of MAJ/NOT gates and phase-encoded D latches over named nets.
	Netlist = phlogic.Netlist
	// NetlistOp is one IR operation.
	NetlistOp = phlogic.Op
	// Program is a validated, compiled Netlist ready for Boolean or
	// phase-domain evaluation.
	Program = phlogic.Program
	// MacroMachine is a Program lowered onto the phase-macromodel
	// substrate, with wobblchip-style I/O (reference latch, optional input
	// oscillator array, pairwise-detector readout).
	MacroMachine = phlogic.MacroMachine
	// MacroConfig tunes CompileMacro.
	MacroConfig = phlogic.MacroConfig
	// LogicCircuit is a Program lowered to a transistor-level circuit of
	// ring-oscillator latches, op-amp summers, and coupling networks.
	LogicCircuit = phlogic.LogicCircuit
	// LogicCircuitConfig sizes LowerLogicCircuit.
	LogicCircuitConfig = phlogic.CircuitConfig
	// InputArray is the wobblchip-style transistor-level input stage: one
	// oscillator per word bit behind switchable coupling links.
	InputArray = phlogic.InputArray
	// InputArrayConfig sizes BuildInputArray.
	InputArrayConfig = phlogic.InputArrayConfig
	// TransientOptions tunes SPICE-level transient analysis.
	TransientOptions = transient.Options
	// TransientResult is a recorded SPICE-level trajectory.
	TransientResult = transient.Result
)

// Ground is the 0 V reference rail.
const Ground = circuit.Ground

// NewCircuit returns an empty circuit.
func NewCircuit() *Circuit { return circuit.New() }

// ParseNetlist parses a SPICE-flavoured deck (see package netlist).
func ParseNetlist(src string) (*Circuit, error) { return netlist.Parse(src) }

// DefaultRingConfig is the paper's 1N1P ring (3 stages, 4.7 nF, ≈9.6 kHz).
func DefaultRingConfig() RingConfig { return ringosc.DefaultConfig() }

// Ring2N1PConfig is the asymmetric-inverter variant of Figs. 6–7.
func Ring2N1PConfig() RingConfig { return ringosc.Config2N1P() }

// BuildRing assembles a ring oscillator.
func BuildRing(cfg RingConfig) (*Ring, error) { return ringosc.Build(cfg) }

// BuildDLatch assembles the Fig. 9 D latch.
func BuildDLatch(cfg DLatchConfig) (*DLatch, error) { return ringosc.BuildLatch(cfg) }

// Oscillator is the substrate abstraction of the analysis pipeline:
// anything that assembles into an autonomous ODE system with a limit cycle.
// *Ring, *DLatch, and the phase-logic compiler's emitted blocks implement
// it, and every PSS/PPV entry point — FindPSSCtx, ExtractPPVCtx, and the
// Engine's memoized PSS/PPV — accepts any implementation. See
// engine.Oscillator for the method contract.
type Oscillator = engine.Oscillator

// FindPSSCtx computes an oscillator's periodic steady state by shooting.
// The context carries cancellation and diagnostics (see package diag via
// the cmd-line tools' -diag flag). Any Oscillator may be passed: the
// paper's ring, a D latch, or a custom substrate.
func FindPSSCtx(ctx context.Context, osc Oscillator) (*PSS, error) {
	return pss.ShootAutonomousCtx(ctx, osc.System(), osc.InitialState(), pss.Options{
		GuessT: 1 / osc.EstimatedF0(), StepsPerPeriod: 1024,
	})
}

// FindPSS computes a ring's periodic steady state by shooting.
//
// Deprecated: use FindPSSCtx, or an Engine to memoize the solve.
func FindPSS(r *Ring) (*PSS, error) { return FindPSSCtx(context.Background(), r) }

// ExtractPPVCtx extracts the time-domain PPV macromodel from an
// oscillator's PSS.
func ExtractPPVCtx(ctx context.Context, osc Oscillator, sol *PSS) (*PPV, error) {
	return ppv.FromSolutionCtx(ctx, osc.System(), sol, 1)
}

// ExtractPPV extracts the time-domain PPV macromodel from a PSS.
//
// Deprecated: use ExtractPPVCtx, or an Engine to memoize the extraction.
func ExtractPPV(r *Ring, sol *PSS) (*PPV, error) {
	return ExtractPPVCtx(context.Background(), r, sol)
}

// RingPPVCtx is the one-call pipeline: build → PSS → PPV. Unlike an
// Engine's RingPPV it recomputes from scratch on every call.
func RingPPVCtx(ctx context.Context, cfg RingConfig) (*Ring, *PSS, *PPV, error) {
	r, err := ringosc.Build(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	sol, err := FindPSSCtx(ctx, r)
	if err != nil {
		return nil, nil, nil, err
	}
	p, err := ExtractPPVCtx(ctx, r, sol)
	if err != nil {
		return nil, nil, nil, err
	}
	return r, sol, p, nil
}

// RingPPV is the one-call pipeline: build → PSS → PPV.
//
// Deprecated: use Engine.RingPPV (memoized) or RingPPVCtx.
func RingPPV(cfg RingConfig) (*Ring, *PSS, *PPV, error) {
	return RingPPVCtx(context.Background(), cfg)
}

// NewGAE builds a Generalized Adler Equation around a PPV.
func NewGAE(p *PPV, f1 float64, inj ...Injection) *GAE {
	return gae.NewModel(p, f1, inj...)
}

// RunTransientCtx integrates a circuit's ODE (SPICE-level transient
// analysis) with cancellation.
func RunTransientCtx(ctx context.Context, sys *System, x0 []float64, t0, t1 float64, opt TransientOptions) (*TransientResult, error) {
	return transient.RunCtx(ctx, sys, x0, t0, t1, opt)
}

// RunTransient integrates a circuit's ODE (SPICE-level transient analysis).
//
// Deprecated: use RunTransientCtx.
func RunTransient(sys *System, x0 []float64, t0, t1 float64, opt TransientOptions) (*TransientResult, error) {
	return RunTransientCtx(context.Background(), sys, x0, t0, t1, opt)
}

// NewSerialAdder builds the Fig. 15 serial adder on phase macromodels.
func NewSerialAdder(p *PPV, f1 float64, aBits, bBits []bool, cfg phlogic.SerialAdderConfig) (*SerialAdder, error) {
	return phlogic.NewSerialAdder(p, f1, aBits, bBits, cfg)
}

// The phase-logic compiler: netlist IR in, runnable phase-logic systems
// out. See internal/phlogic and the DESIGN.md compiler section.

// ParseLogicNetlist decodes and validates a JSON IR document.
func ParseLogicNetlist(data []byte) (*Netlist, error) { return phlogic.ParseNetlistJSON(data) }

// RippleCarryAdderNetlist generates the IR of an N-bit ripple-carry adder
// (inputs a0../b0.., outputs s0../cout, majority-logic full-adder slices).
func RippleCarryAdderNetlist(bits int) *Netlist { return phlogic.RippleCarryAdder(bits) }

// ShiftRegisterNetlist generates the IR of an N-stage serial shift register.
func ShiftRegisterNetlist(stages int) *Netlist { return phlogic.ShiftRegister(stages) }

// SynthesizeTruthTable compiles an arbitrary combinational truth table into
// a two-level MAJ/NOT netlist (see phlogic.SynthesizeTruthTable).
func SynthesizeTruthTable(name string, inputs, outputs []string, table [][]bool) (*Netlist, error) {
	return phlogic.SynthesizeTruthTable(name, inputs, outputs, table)
}

// CompileMacro lowers a netlist onto the phase-macromodel substrate: one
// oscillator latch per sequential element plus the wobblchip-style I/O
// structure, with the MAJ/NOT gates evaluated as phasor algebra in the
// coupled system's drive network.
func CompileMacro(n *Netlist, p *PPV, f1 float64, cfg MacroConfig) (*MacroMachine, error) {
	return phlogic.CompileMacro(n, p, f1, cfg)
}

// LowerLogicCircuit lowers a netlist to a transistor-level circuit:
// ring-oscillator latch pairs with transmission-gate clocking for the
// flip-flops, op-amp summers for the gates, phase-encoded rails for the
// inputs (streams[i] drives input i, one bit per clock period).
func LowerLogicCircuit(n *Netlist, streams [][]bool, cfg LogicCircuitConfig) (*LogicCircuit, error) {
	return phlogic.LowerCircuit(n, streams, cfg)
}

// BuildInputArray assembles the wobblchip-style transistor-level input
// stage encoding the given word.
func BuildInputArray(word []bool, cfg InputArrayConfig) (*InputArray, error) {
	return phlogic.BuildInputArray(word, cfg)
}

// Devices re-exported for programmatic circuit building.
type (
	// Resistor is a linear resistance.
	Resistor = device.Resistor
	// Capacitor is a linear capacitance.
	Capacitor = device.Capacitor
	// MOSFET is the long-channel square-law transistor model.
	MOSFET = device.MOSFET
	// SineCurrent is a sinusoidal current source.
	SineCurrent = device.SineCurrent
	// Summer is the behavioural op-amp weighted summer (majority gates).
	Summer = device.Summer
	// TransGate is the transmission-gate switch.
	TransGate = device.TransGate
)

// ALD1106 returns the calibrated NMOS parameter set.
func ALD1106() device.MOSParams { return device.ALD1106() }

// ALD1107 returns the calibrated PMOS parameter set.
func ALD1107() device.MOSParams { return device.ALD1107() }
