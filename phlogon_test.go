package phlogon_test

import (
	"math"
	"testing"

	phlogon "repro"
	"repro/internal/phlogic"
	"repro/internal/transient"
)

// TestFacadePipeline exercises the documented public flow end to end.
func TestFacadePipeline(t *testing.T) {
	ring, sol, p, err := phlogon.RingPPV(phlogon.DefaultRingConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ring.Sys.N != 3 {
		t.Errorf("ring has %d nodes", ring.Sys.N)
	}
	if sol.F0 < 9.3e3 || sol.F0 > 9.9e3 {
		t.Errorf("f0 = %g", sol.F0)
	}
	m := phlogon.NewGAE(p, sol.F0, phlogon.Injection{
		Name: "SYNC", Node: 0, Amp: 100e-6, Harmonic: 2,
	})
	if !m.WillLock() {
		t.Fatal("SHIL not predicted at 100 µA")
	}
	d0, d1, err := m.SHILPhases()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Abs(d0-d1)-0.5) > 0.02 && math.Abs(math.Abs(d0-d1)-0.5) < 0.48 {
		t.Errorf("SHIL phases %g, %g not antipodal", d0, d1)
	}
}

func TestFacadeNetlistRoundTrip(t *testing.T) {
	ckt, err := phlogon.ParseNetlist(".rail vdd 3.0\nR1 vdd out 1k\nR2 out 0 1k\n")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ckt.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res, err := phlogon.RunTransient(sys, []float64{0}, 0, 1e-6, transient.Options{
		Method: transient.BE, Step: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Parasitic-cap node settles toward the 1.5 V divider voltage.
	if v := res.Final()[0]; v < 1.2 || v > 1.6 {
		t.Errorf("divider settled at %g", v)
	}
}

func TestFacadeSerialAdder(t *testing.T) {
	_, _, p, err := phlogon.RingPPV(phlogon.DefaultRingConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := []bool{true, true}
	b := []bool{false, true}
	sa, err := phlogon.NewSerialAdder(p, p.F0, a, b, phlogic.SerialAdderConfig{SyncAmp: 100e-6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sa.Run(2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := sa.ReadSums(res, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := phlogic.GoldenSerialAdder(a, b)
	for i := range want {
		if sums[i] != want[i] {
			t.Errorf("sum bit %d = %v, want %v", i, sums[i], want[i])
		}
	}
}

func TestFacadeDeviceParams(t *testing.T) {
	n, p := phlogon.ALD1106(), phlogon.ALD1107()
	if n.VT0 <= 0 || p.VT0 <= 0 {
		t.Error("threshold voltages must be positive magnitudes")
	}
	if p.Beta >= n.Beta {
		t.Error("PMOS transconductance should be below NMOS (hole mobility)")
	}
}
