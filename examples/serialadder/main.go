// Serial adder demo (the paper's Figs. 15/16/20): assemble the phase-logic
// FSM — two D latches in a master–slave flip-flop holding the carry, plus a
// majority-gate full adder — on PPV phase macromodels, add two numbers, and
// verify every output bit against the golden Boolean adder.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	phlogon "repro"
	"repro/internal/phlogic"
)

func main() {
	_, _, p, err := phlogon.RingPPVCtx(context.Background(), phlogon.DefaultRingConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 13 + 11 = 24 over 5 bits, LSB first.
	a := []bool{true, false, true, true, false} // 13
	b := []bool{true, true, false, true, false} // 11
	sa, err := phlogon.NewSerialAdder(p, p.F0, a, b, phlogic.SerialAdderConfig{
		SyncAmp: 100e-6, ClockCycles: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sa.Run(float64(len(a)), 0.25)
	if err != nil {
		log.Fatal(err)
	}
	sums, err := sa.ReadSums(res, len(a))
	if err != nil {
		log.Fatal(err)
	}
	carries, err := sa.ReadCarries(res, len(a))
	if err != nil {
		log.Fatal(err)
	}
	wantSum, _ := phlogic.GoldenSerialAdder(a, b)

	fmt.Printf("a       = %s (= %d)\n", bits(a), val(a))
	fmt.Printf("b       = %s (= %d)\n", bits(b), val(b))
	fmt.Printf("sum     = %s (= %d)\n", bits(sums), val(sums))
	fmt.Printf("carries = %s\n", bits(carries))
	fmt.Printf("golden  = %s (= %d)\n", bits(wantSum), val(wantSum))

	for i := range wantSum {
		if sums[i] != wantSum[i] {
			log.Fatalf("bit %d wrong", i)
		}
	}
	fmt.Printf("\nphase-logic adder computed %d + %d = %d correctly in %d RK4 steps\n",
		val(a), val(b), val(sums), res.Steps)
	fmt.Println("(each oscillator latch is a single scalar phase unknown — the paper's eq. 13/14)")
}

// bits renders LSB-first booleans as an MSB-first string.
func bits(v []bool) string {
	var sb strings.Builder
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func val(v []bool) int {
	n := 0
	for i := len(v) - 1; i >= 0; i-- {
		n <<= 1
		if v[i] {
			n |= 1
		}
	}
	return n
}
