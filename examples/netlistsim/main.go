// Netlist-driven flow: author the paper's ring oscillator as a SPICE-style
// deck, parse it, find its PSS and PPV, and ask the design tools whether a
// given SYNC drive stores a bit — all without touching the programmatic
// circuit builders.
package main

import (
	"context"
	"fmt"
	"log"

	phlogon "repro"
	"repro/internal/ppv"
	"repro/internal/pss"
)

const deck = `
* 3-stage ring oscillator, ALD1106/07 inverters, 4.7 nF loads (paper Fig. 3)
.rail vdd 3.0
.param cload=4.7n
Mn1 n1 n3 0   nmos model=ald1106
Mp1 n1 n3 vdd pmos model=ald1107
C1  n1 0 {cload}
Mn2 n2 n1 0   nmos model=ald1106
Mp2 n2 n1 vdd pmos model=ald1107
C2  n2 0 {cload}
Mn3 n3 n2 0   nmos model=ald1106
Mp3 n3 n2 vdd pmos model=ald1107
C3  n3 0 {cload}
.end
`

func main() {
	ctx := context.Background()
	ckt, err := phlogon.ParseNetlist(deck)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := ckt.Assemble()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed deck:", sys.Describe())

	// Kick the oscillator off its unstable equilibrium and shoot for the PSS.
	x0 := make([]float64, sys.N)
	for i := range x0 {
		x0[i] = 1.5 + 1.2*float64(i%3-1)
	}
	sol, err := pss.ShootAutonomousCtx(ctx, sys, x0, pss.Options{GuessT: 1 / 9.6e3, StepsPerPeriod: 1024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PSS: f0 = %.6g Hz, periodicity residual %.2g V\n", sol.F0, sol.Residual)

	p, err := ppv.FromSolutionCtx(ctx, sys, sol, 1)
	if err != nil {
		log.Fatal(err)
	}
	n1 := ckt.NodeIndex("n1")
	fmt.Printf("PPV at n1: |V1| = %.4g, |V2| = %.4g\n",
		p.NodeSeries[n1].Magnitude(1), p.NodeSeries[n1].Magnitude(2))

	for _, amp := range []float64{20e-6, 60e-6, 120e-6} {
		m := phlogon.NewGAE(p, sol.F0*1.005, phlogon.Injection{
			Name: "SYNC", Node: n1, Amp: amp, Harmonic: 2,
		})
		fmt.Printf("SYNC %5.0f µA at 0.5%% detuning: SHIL lock predicted = %v\n",
			amp*1e6, m.WillLock())
	}
}
