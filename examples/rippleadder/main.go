// Ripple-carry adder from netlist IR: build the 8-bit adder as a MAJ-gate
// netlist, compile it onto the PPV phase-macromodel substrate — one
// oscillator latch per readout plus a free-running reference, with the
// majority gates evaluated as phasor algebra — and add numbers whose carry
// ripples through all eight slices. Every decoded bit is checked against
// the Boolean evaluation of the same IR.
package main

import (
	"context"
	"fmt"
	"log"

	phlogon "repro"
)

func main() {
	_, _, p, err := phlogon.RingPPVCtx(context.Background(), phlogon.DefaultRingConfig())
	if err != nil {
		log.Fatal(err)
	}

	const bits = 8
	n := phlogon.RippleCarryAdderNetlist(bits)
	m, err := phlogon.CompileMacro(n, p, p.F0, phlogon.MacroConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-bit ripple-carry adder compiled from netlist IR: %d MAJ gates, %d oscillator latches\n\n",
		len(n.Ops), m.NumLatches())

	// 255+1 propagates a carry through every slice; 170+85 alternates.
	pairs := [][2]int{{255, 1}, {170, 85}, {137, 200}}
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		word := make([]bool, 2*bits)
		for i := 0; i < bits; i++ {
			word[2*i] = a&(1<<i) != 0
			word[2*i+1] = b&(1<<i) != 0
		}
		out, _, err := m.RunWord(word)
		if err != nil {
			log.Fatal(err)
		}
		sum := 0
		for i := 0; i < bits; i++ {
			if out[i] {
				sum |= 1 << i
			}
		}
		if out[bits] { // cout
			sum |= 1 << bits
		}
		status := "ok"
		if sum != a+b {
			status = "WRONG"
		}
		fmt.Printf("  %3d + %3d = %3d (decoded from oscillator phases) %s\n", a, b, sum, status)
		if sum != a+b {
			log.Fatalf("adder returned %d, want %d", sum, a+b)
		}
	}

	fmt.Printf("\nall sums decoded correctly: the carry chain survives %d majority stages\n", bits)
	fmt.Println("(logic 1 ⇔ Δφ = 0, logic 0 ⇔ Δφ = ½ cycle against the reference oscillator)")
}
