// Package examples anchors the runnable example programs in the module
// build graph. Each subdirectory is a standalone main package exercising
// one slice of the toolchain (see each main.go's header comment);
// examples_test.go builds and runs every one of them so `go test ./...`
// catches API drift that would break the documented entry points.
package examples
