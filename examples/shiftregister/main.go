// Multi-bit shift register from netlist IR: four phase-encoded D latches in
// series, compiled onto the phase-macromodel substrate (a master–slave
// oscillator pair per stage), clocked through a serial word. Each stage's
// decoded stream must be the input delayed by one more clock period — the
// FSM substrate of the paper's phase-logic architecture.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	phlogon "repro"
)

func main() {
	_, _, p, err := phlogon.RingPPVCtx(context.Background(), phlogon.DefaultRingConfig())
	if err != nil {
		log.Fatal(err)
	}

	const stages = 4
	n := phlogon.ShiftRegisterNetlist(stages)
	m, err := phlogon.CompileMacro(n, p, p.F0, phlogon.MacroConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d-stage shift register compiled from netlist IR: %d oscillator latches (master+slave per stage)\n\n",
		stages, m.NumLatches())

	stream := []bool{true, false, true, true, false, true}
	out, _, err := m.RunStreams([][]bool{stream}, len(stream))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  d  = %s (serial input, one bit per clock period)\n", bitString(stream))
	ok := true
	for j := 0; j < stages; j++ {
		want := make([]bool, len(stream))
		for k := range stream {
			want[k] = k-j >= 0 && stream[k-j]
		}
		match := bitString(out[j]) == bitString(want)
		ok = ok && match
		fmt.Printf("  q%d = %s (want %s, delay %d) %v\n", j, bitString(out[j]), bitString(want), j, match)
	}
	if !ok {
		log.Fatal("shifted streams do not match")
	}
	fmt.Println("\nevery stage reproduces the input delayed by one more clock period")
	fmt.Println("(each bit is held purely as an oscillator's phase — no voltage level anywhere)")
}

func bitString(v []bool) string {
	var sb strings.Builder
	for _, b := range v {
		sb.WriteByte(map[bool]byte{true: '1', false: '0'}[b])
	}
	return sb.String()
}
