// Quickstart: the full designer pipeline of the paper on its ring-oscillator
// latch — build the circuit, find its periodic steady state, extract the PPV
// phase macromodel, and use Generalized Adlerization to predict whether a
// SYNC injection will store a phase-logic bit (SHIL), at what phases, and
// over what locking range.
package main

import (
	"context"
	"fmt"
	"log"

	phlogon "repro"
)

func main() {
	ctx := context.Background()

	// 1. The paper's vehicle: 3-stage ring, ALD1106/07 inverters, 4.7 nF
	// stage loads, free-running near 9.6 kHz (Fig. 3). The Engine memoizes
	// the expensive artifacts: every later request for this configuration —
	// from any goroutine — reuses this one extraction.
	eng := phlogon.NewEngine(phlogon.EngineOptions{})
	ring, sol, p, err := eng.RingPPV(ctx, phlogon.DefaultRingConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring oscillator: %s\n", ring.Sys.Describe())
	fmt.Printf("PSS by shooting: f0 = %.5g Hz (period %.4g s), residual %.2g V\n",
		sol.F0, sol.T0, sol.Residual)
	trivial, largest, stable := sol.StabilityReport()
	fmt.Printf("Floquet: trivial multiplier ≈ %.4g, largest other |µ| = %.3g → orbitally stable: %v\n\n",
		real(trivial), largest, stable)

	// 2. The PPV phase macromodel (eq. 3): the latch's phase sensitivity to
	// injected currents, per node and harmonic.
	fmt.Printf("PPV harmonics at the injection node n1: |V1| = %.4g, |V2| = %.4g\n",
		p.NodeSeries[0].Magnitude(1), p.NodeSeries[0].Magnitude(2))

	// 3. Generalized Adlerization with a SYNC current at 2·f1 (eq. 4/5):
	// will sub-harmonic injection locking happen, and where are the two
	// stable phases that encode a logic bit?
	f1 := sol.F0
	m := phlogon.NewGAE(p, f1, phlogon.Injection{
		Name: "SYNC", Node: 0, Amp: 100e-6, Harmonic: 2,
	})
	if !m.WillLock() {
		log.Fatal("SHIL not predicted — increase the SYNC amplitude")
	}
	d0, d1, err := m.SHILPhases()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SHIL predicted: stable phases Δφ = %.4f and %.4f cycles (bit 1 / bit 0)\n", d0, d1)

	// 4. Locking range (Fig. 7): how much detuning the bit survives.
	lo, hi := m.LockingBand()
	fmt.Printf("locking range at 100 µA SYNC: f1 ∈ [%.5g, %.5g] Hz (width %.3g Hz)\n",
		lo, hi, hi-lo)

	// 5. Bit-flip timing (Fig. 12): a D input at f1, phase-aligned with the
	// logic-1 lock, flips the stored bit from the logic-0 lock.
	dPhase := d0 + m.PhaseOfHarmonic(0, 1) - 0.25
	flip := m.With(phlogon.Injection{Name: "D", Node: 0, Amp: 150e-6, Harmonic: 1, Phase: dPhase})
	tr := flip.Transient(d1-0.003, 0, 3000/f1, 1/f1)
	fmt.Printf("bit flip with a 150 µA D input: %.4f → %.4f cycles, settles in %.3g ms (%.0f cycles)\n",
		d1, tr.Final(), tr.SettleTime(0.02)*1e3, tr.SettleTime(0.02)*f1)

	// 6. The engine made step 1 a one-time cost: an identical request is now
	// a cache hit returning the same shared artifact.
	if _, _, _, err := eng.RingPPV(ctx, phlogon.DefaultRingConfig()); err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("\nengine: %d misses, %d hits, %d artifacts resident (%.1f KiB)\n",
		st.Misses, st.Hits, st.Entries, float64(st.Bytes)/1024)
}
