// Noise immunity of phase logic (the paper's motivating claim): the same
// PPV that powers the deterministic design tools gives the oscillator's
// phase-diffusion coefficient under device noise. A free-running oscillator
// loses phase information as a random walk; under the SYNC injection that
// stores the logic bit, SHIL confines the phase to a narrow distribution
// around the lock, and bit errors require exponentially rare hops over the
// saddle between the two states.
package main

import (
	"context"
	"fmt"
	"log"

	phlogon "repro"
	"repro/internal/noise"
	"repro/internal/phasemacro"
)

func main() {
	_, sol, p, err := phlogon.RingPPVCtx(context.Background(), phlogon.DefaultRingConfig())
	if err != nil {
		log.Fatal(err)
	}
	cal, err := phasemacro.Calibrate(&phasemacro.Latch{P: p, Node: 0, Out: 0}, 10e3)
	if err != nil {
		log.Fatal(err)
	}

	// Physical noise floor: thermal noise of the ~kΩ-scale resistive paths.
	src := []noise.Source{{Node: 0, PSD: noise.ThermalCurrentPSD(1e3, 300)}}
	c := noise.AlphaDiffusion(p, src)
	fmt.Printf("oscillator: f0 = %.5g Hz\n", sol.F0)
	fmt.Printf("thermal phase diffusion c = %.3g s²/s\n", c)
	fmt.Printf("Lorentzian linewidth      = %.3g Hz\n", noise.Linewidth(p, src))
	fmt.Printf("RMS jitter per cycle      = %.3g s (%.3g ppm of T0)\n\n",
		noise.JitterPerCycle(p, src), noise.JitterPerCycle(p, src)/sol.T0*1e6)

	// Exaggerated noise so a second of simulation shows the physics.
	d := 5e-3 // Δφ diffusion, cycles²/s
	free := phlogon.NewGAE(p, sol.F0)
	locked := phlogon.NewGAE(p, sol.F0, phlogon.Injection{
		Name: "SYNC", Node: 0, Amp: 100e-6, Harmonic: 2, Phase: cal.SyncPhase,
	})

	T := 2.0
	rFree := noise.StochasticTransient(free, 0, d, 0, T, 1e-4, 1)
	rLock := noise.StochasticTransient(locked, 0, d, 0, T, 1e-4, 1)
	fmt.Printf("with Δφ diffusion D = %g cycles²/s over %g s:\n", d, T)
	fmt.Printf("  free-running: final phase drift %+.3f cycles (random walk, information lost)\n",
		rFree.Dphi[len(rFree.Dphi)-1])
	fmt.Printf("  SHIL-locked:  phase variance %.2e cycles² (OU prediction %.2e), hops: %d\n",
		rLock.Var(), noise.ConfinementVariance(locked, 0, d), rLock.Hops)

	// Bit-error onset: hop counts vs noise level at two SYNC strengths.
	fmt.Println("\nbit-retention (hops over 1 s, 8 seeds) vs noise and SYNC drive:")
	fmt.Printf("%14s %14s %14s\n", "D [cyc²/s]", "SYNC 50 µA", "SYNC 150 µA")
	for _, dd := range []float64{0.1, 1, 10, 40} {
		row := [2]int{}
		for i, amp := range []float64{50e-6, 150e-6} {
			m := phlogon.NewGAE(p, sol.F0, phlogon.Injection{
				Name: "SYNC", Node: 0, Amp: amp, Harmonic: 2, Phase: cal.SyncPhase,
			})
			for s := int64(0); s < 8; s++ {
				row[i] += noise.StochasticTransient(m, 0, dd, 0, 1, 1e-4, 100+s).Hops
			}
		}
		fmt.Printf("%14g %14d %14d\n", dd, row[0], row[1])
	}
	fmt.Println("\nstronger SYNC ⇒ stiffer lock ⇒ exponentially fewer bit errors —")
	fmt.Println("the quantitative form of the paper's noise-immunity argument.")
}
