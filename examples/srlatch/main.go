// Fully phase-based latches (the paper's Fig. 13/14 design study): the SR
// latch whose inputs pass through a weighted majority gate, and the
// majority-clocked D latch MAJ(D, CLK, Q). The weight study shows why a
// conventional equal-weight majority gate is unsuitable — S/R mismatch
// overwrites the stored bit — while w = (0.01, 0.01, 1) tolerates mismatch
// yet still flips when S and R agree at Vdd/2.
package main

import (
	"context"
	"fmt"
	"log"

	phlogon "repro"
	"repro/internal/gae"
	"repro/internal/phlogic"
)

func main() {
	_, sol, p, err := phlogon.RingPPVCtx(context.Background(), phlogon.DefaultRingConfig())
	if err != nil {
		log.Fatal(err)
	}

	const syncAmp = 6e-6
	uniform, err := phlogic.NewSRLatch(p, 0, 0, sol.F0, syncAmp, 10e3, [3]float64{1, 1, 1})
	if err != nil {
		log.Fatal(err)
	}
	weighted, err := phlogic.NewSRLatch(p, 0, 0, sol.F0, syncAmp, 10e3, [3]float64{0.01, 0.01, 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== SR latch weight study (Fig. 14)")
	fmt.Printf("%26s %14s %14s\n", "", "w=(1,1,1)", "w=(0.01,0.01,1)")
	check := func(name string, f func(l *phlogic.SRLatch) bool) {
		fmt.Printf("%26s %14v %14v\n", name, f(uniform), f(weighted))
	}
	check("flips when S=R=1.5 V", func(l *phlogic.SRLatch) bool { return l.FlipsWhenSet(1.5) })
	for _, mm := range []float64{0.02, 0.05, 0.10} {
		mm := mm
		check(fmt.Sprintf("holds at %.0f%% mismatch", mm*100),
			func(l *phlogic.SRLatch) bool { return l.HoldsUnderMismatch(1.5, mm) })
	}
	fmt.Println("\nstable phases vs |S|=|R| (same phase, weighted gate):")
	for _, pt := range weighted.SweepMagnitude(gae.Linspace(0, 1.5, 7), false) {
		fmt.Printf("  |S|=%4.2f V → stable Δφ* %v\n", pt.Param, pt.Stable)
	}

	fmt.Println("\n== majority-clocked D latch MAJ(D, CLK, Q) (Fig. 13)")
	bits := []bool{true, false, true, true, false}
	dl, err := phlogic.NewPhaseDLatch(p, 0, 0, sol.F0, bits, phlogic.PhaseDLatchConfig{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dl.Run(false, float64(len(bits)), 0.25)
	if err != nil {
		log.Fatal(err)
	}
	got := dl.ReadBits(res, len(bits))
	fmt.Printf("data in:  %v\nlatched:  %v\n", bits, got)
	for i := range bits {
		if got[i] != bits[i] {
			log.Fatalf("bit %d wrong", i)
		}
	}
	fmt.Println("every bit loaded through the OR-then-AND action of one clock cycle —")
	fmt.Println("no level-encoded signal anywhere in the latch.")
}
