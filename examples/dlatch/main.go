// D-latch design study (the paper's Sec. 4.1–4.2 flow): characterize bit
// storage (locking range over SYNC amplitude), choose the D input magnitude
// from the equilibrium sweep (one stable state must vanish, Fig. 10/11),
// verify the flip timing with GAE transients (Fig. 12), and finally
// cross-check one flip against SPICE-level transient simulation (Fig. 17's
// validation).
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/cmplx"

	phlogon "repro"
	"repro/internal/gae"
	"repro/internal/phasemacro"
	"repro/internal/transient"
	"repro/internal/wave"
)

func main() {
	ctx := context.Background()
	_, sol, p, err := phlogon.RingPPVCtx(ctx, phlogon.DefaultRingConfig())
	if err != nil {
		log.Fatal(err)
	}
	latch := &phasemacro.Latch{P: p, Node: 0, Out: 0}
	cal, err := phasemacro.Calibrate(latch, 10e3)
	if err != nil {
		log.Fatal(err)
	}
	f1 := sol.F0 * 1.0004 // the generator sits near, not exactly at, f0
	dPhase := cmplx.Phase(p.Harmonic(0, 1))/(2*math.Pi) - 0.25

	// Stage 1 — bit storage: locking range vs SYNC amplitude (Fig. 7).
	fmt.Println("== bit storage (SHIL locking range)")
	m := phlogon.NewGAE(p, f1)
	for _, pt := range m.SweepSyncAmplitude(0, 2, []float64{50e-6, 100e-6, 150e-6, 200e-6}) {
		fmt.Printf("  SYNC %6.0f µA → lock band width %7.4g Hz\n", pt.Amp*1e6, pt.F1Hi-pt.F1Lo)
	}

	// Stage 2 — bit flip: sweep D and find where one stable state vanishes
	// (Fig. 11); that is the minimum usable write amplitude.
	fmt.Println("\n== bit flip (D input sizing, SYNC = 120 µA)")
	base := phlogon.NewGAE(p, f1,
		phlogon.Injection{Name: "SYNC", Node: 0, Amp: 120e-6, Harmonic: 2, Phase: cal.SyncPhase},
		phlogon.Injection{Name: "D", Node: 0, Amp: 0, Harmonic: 1, Phase: dPhase},
	)
	threshold := math.Inf(1)
	for _, pt := range base.SweepInjectionAmplitude(1, gae.Linspace(0, 200e-6, 81)) {
		if len(pt.Stable) == 1 {
			threshold = pt.Param
			break
		}
	}
	fmt.Printf("  write threshold: one stable state vanishes above D ≈ %.3g µA\n", threshold*1e6)

	// Stage 3 — timing: GAE transients at several write amplitudes
	// (Fig. 12). Note the strong slowdown just above the threshold.
	fmt.Println("\n== flip timing (GAE transients)")
	T1 := 1 / f1
	for _, da := range []float64{1.1 * threshold, 2 * threshold, 3 * threshold} {
		mm := base.With()
		mm.Injections[1].Amp = da
		pre := base.With()
		pre.Injections[1].Amp = da
		pre.Injections[1].Phase = dPhase + 0.5
		x0 := 0.5
		for _, e := range pre.StableEquilibria() {
			if gae.CircularDistance(e.Dphi, 0.5) < 0.2 {
				x0 = e.Dphi
			}
		}
		tr := mm.Transient(x0, 0, 5000*T1, T1)
		fmt.Printf("  D = %6.1f µA → settles in %7.3f ms\n", da*1e6, tr.SettleTime(0.02)*1e3)
	}

	// Stage 4 — validation: one SPICE-level flip, phase measured from zero
	// crossings against the reference (the Fig. 17 experiment).
	fmt.Println("\n== SPICE-level validation (zero-crossing phase)")
	cfg := phlogon.DLatchConfig{
		Ring: phlogon.DefaultRingConfig(), F1: f1,
		SyncAmp: 120e-6, SyncPhase: cal.SyncPhase,
		DAmp: 3 * threshold, DPhase: dPhase + 0.5, DFlipTime: 40 * T1,
		DImpedance: 10e6, TGateRon: 1e3, TGateRoff: 100e9,
	}
	l, err := phlogon.BuildDLatch(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := phlogon.RunTransientCtx(ctx, l.Sys, l.KickStart(), 0, 120*T1, transient.Options{
		Method: transient.Trap, Step: T1 / 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	sig, err := wave.New(res.T, res.Node(l.OutputIndex()))
	if err != nil {
		log.Fatal(err)
	}
	ref := wave.FromFunc(l.ReferenceWaveform(0), 0, 120*T1, len(res.T))
	pts := wave.PhaseVsReference(sig, ref, 1.5, T1)
	first, last := pts[len(pts)/4].Phi, pts[len(pts)-1].Phi
	fmt.Printf("  measured phase before flip: %.4f cycles; after: %.4f (Δ = %.4f)\n",
		first, last, math.Abs(last-first))
	if d := math.Abs(math.Abs(last-first) - 0.5); d > 0.05 {
		log.Fatalf("SPICE flip amount off by %.3g cycles", d)
	}
	fmt.Println("  SPICE-level flip confirms the half-cycle phase transition predicted by the GAE")
}
