package examples_test

import (
	"testing"

	"repro/internal/cmdtest"
)

// Every example program must build, run to completion with exit 0, and
// print the landmark lines below. The landmarks are chosen from both the
// top and the bottom of each program's output, so a mid-run panic or a
// silently wrong result (e.g. the adder printing a sum without the
// "correctly" verdict) fails the smoke test even though the process may
// have kept going.
var examplePrograms = []struct {
	dir   string
	wants []string
}{
	{"quickstart", []string{
		"PSS by shooting: f0 = 9596.1 Hz",
		"orbitally stable: true",
		"locking range at 100 µA SYNC",
		"bit flip with a 150 µA D input",
	}},
	{"netlistsim", []string{
		"parsed deck: circuit with 3 free nodes",
		"SHIL lock predicted = false",
		"SHIL lock predicted = true",
	}},
	{"dlatch", []string{
		"== bit storage (SHIL locking range)",
		"measured phase before flip",
		"SPICE-level flip confirms the half-cycle phase transition",
	}},
	{"srlatch", []string{
		"== SR latch weight study (Fig. 14)",
		"no level-encoded signal anywhere in the latch.",
	}},
	{"serialadder", []string{
		"a       = 01101 (= 13)",
		"sum     = 11000 (= 24)",
		"phase-logic adder computed 13 + 11 = 24 correctly",
	}},
	{"rippleadder", []string{
		"8-bit ripple-carry adder compiled from netlist IR",
		"255 +   1 = 256",
		"all sums decoded correctly",
	}},
	{"shiftregister", []string{
		"4-stage shift register compiled from netlist IR",
		"every stage reproduces the input delayed by one more clock period",
	}},
	{"noiseimmunity", []string{
		"thermal phase diffusion c =",
		"stronger SYNC ⇒ stiffer lock ⇒ exponentially fewer bit errors",
	}},
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs every example program")
	}
	for _, ex := range examplePrograms {
		ex := ex
		t.Run(ex.dir, func(t *testing.T) {
			t.Parallel()
			bin := cmdtest.Build(t, "./examples/"+ex.dir)
			res := cmdtest.Run(t, bin, "")
			if res.ExitCode != 0 {
				t.Fatalf("exit %d\nstdout: %s\nstderr: %s",
					res.ExitCode, res.Stdout, res.Stderr)
			}
			cmdtest.MustContain(t, res.Stdout, ex.wants...)
		})
	}
}
